#include "sim/fault/fault_plan.hpp"

#include <array>

namespace ooh::sim::fault {
namespace {

constexpr std::array<std::string_view, kFaultPointCount> kPointNames = {
    "pml_force_full",     "epml_force_full", "self_ipi_suppress",
    "gpa_alloc_fail",     "frame_alloc_fail", "wp_protect_fail",
    "migration_send_fail", "dirty_ring_full",
};

/// SplitMix64 (Steele et al.): tiny, full-period, and identical on every
/// platform — exactly what seed-replayable plans need.
struct SplitMix64 {
  u64 state;
  u64 next() noexcept {
    u64 z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform-ish value in [lo, hi] (inclusive). Modulo bias is irrelevant
  /// here: plans only need determinism, not statistical quality.
  u64 range(u64 lo, u64 hi) noexcept { return lo + next() % (hi - lo + 1); }
};

}  // namespace

std::string_view fault_point_name(FaultPoint p) noexcept {
  return kPointNames[static_cast<std::size_t>(p)];
}

FaultPlan FaultPlan::from_seed(u64 seed) {
  SplitMix64 rng{seed ^ 0xD1B54A32D192ED03ull};
  FaultPlan plan;
  plan.seed_ = seed;
  // One rule per injection point, plus a second helping of buffer-full rules
  // (they are the highest-traffic sites and benefit from repeated firing).
  // Arrival windows are kept small so short workloads still reach them.
  plan.add({FaultPoint::kPmlForceFull, rng.range(0, 200), rng.range(50, 300),
            rng.range(1, 4), 0});
  plan.add({FaultPoint::kEpmlForceFull, rng.range(0, 200), rng.range(50, 300),
            rng.range(1, 4), 0});
  plan.add({FaultPoint::kSelfIpiSuppress, rng.range(0, 2), 0, 1,
            rng.range(1, 8)});
  plan.add({FaultPoint::kGpaAllocFail, rng.range(0, 64), 0, 1, 0});
  plan.add({FaultPoint::kFrameAllocFail, rng.range(0, 1), 0, 1, 0});
  plan.add({FaultPoint::kWpProtectFail, 0, 0, 1, 0});
  plan.add({FaultPoint::kMigrationSendFail, rng.range(0, 3), rng.range(2, 6),
            rng.range(1, 2), 0});
  plan.add({FaultPoint::kDirtyRingFull, rng.range(0, 200), rng.range(50, 300),
            rng.range(1, 4), 0});
  return plan;
}

}  // namespace ooh::sim::fault
