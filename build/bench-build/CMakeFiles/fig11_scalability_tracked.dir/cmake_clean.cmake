file(REMOVE_RECURSE
  "../bench/fig11_scalability_tracked"
  "../bench/fig11_scalability_tracked.pdb"
  "CMakeFiles/fig11_scalability_tracked.dir/fig11_scalability_tracked.cpp.o"
  "CMakeFiles/fig11_scalability_tracked.dir/fig11_scalability_tracked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scalability_tracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
