# Empty compiler generated dependencies file for ablation_wss.
# This may be replaced when dependencies are built.
