#include "ooh/adaptive/policy.hpp"

namespace ooh::lib {

Technique PolicyEngine::decide(const WssSignal& sig, Technique current) {
  if (sig.windows < cfg_.warmup_windows) return current;
  if (switches_ != 0 &&
      sig.windows - last_switch_window_ < cfg_.min_windows_between_switches) {
    return current;
  }
  Technique want = current;
  if (sig.dirty_rate >= cfg_.hot_rate_threshold) {
    want = cfg_.hot;
  } else if (sig.dirty_rate <= cfg_.cold_rate_threshold) {
    want = cfg_.cold;
  }
  if (want != current) {
    ++switches_;
    last_switch_window_ = sig.windows;
  }
  return want;
}

}  // namespace ooh::lib
