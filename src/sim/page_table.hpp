// Guest page table: per-process GVA -> GPA mapping with the PTE bits the
// paper's tracking techniques manipulate (see page_table_entry.hpp).
//
// Two translation backends sit behind one walk seam:
//   kRadix   — 4-level radix with PS-bit leaves at 4 KiB / 2 MiB / 1 GiB.
//   kSegment — range-based SegmentTable (Teabe/Tchana), converted from the
//              radix state by convert_to_segments(); per-segment flags.
// The Mmu resolves translations through lookup(), which normalises both
// backends (and every leaf granularity) to a per-4 KiB translated GPA.
#pragma once

#include <memory>

#include "base/types.hpp"
#include "sim/page_table_entry.hpp"
#include "sim/radix.hpp"
#include "sim/segment_table.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

enum class TranslationBackend : u8 { kRadix, kSegment };

class GuestPageTable {
 public:
  /// One resolved walk step: the leaf (shared per region for huge leaves
  /// and segments), its granularity, and the 4 KiB-page GPA computed for
  /// the queried GVA. `pte` is null when no mapping covers the address.
  struct Lookup {
    Pte* pte = nullptr;
    PageGran gran = PageGran::k4K;
    Gpa gpa_page = 0;
  };

  /// Install a present 4 KiB mapping gva_page -> gpa_page (page-aligned).
  void map(Gva gva_page, Gpa gpa_page, bool writable);
  void unmap(Gva gva_page);

  /// Install a present PS-bit leaf of granularity `gran` mapping the
  /// 2 MiB / 1 GiB region at gva_base onto the GPA-contiguous run at
  /// gpa_base. Radix backend only. The caller keeps GRAN-1: no present
  /// 4 KiB entries may exist beneath (the audit, not this method, checks).
  void map_huge(Gva gva_base, Gpa gpa_base, PageGran gran, bool writable);
  void unmap_huge(Gva gva_base, PageGran gran);

  [[nodiscard]] Pte* pte(Gva gva) noexcept {
    if (backend_ == TranslationBackend::kSegment) {
      Segment* s = segs_->find(page_floor(gva));
      return s != nullptr ? &s->pte : nullptr;
    }
    if (!table_.has_huge()) return table_.find(page_floor(gva));
    PageGran g;
    return table_.find_leaf(page_floor(gva), g);
  }
  [[nodiscard]] const Pte* pte(Gva gva) const noexcept {
    return const_cast<GuestPageTable*>(this)->pte(gva);
  }

  /// The walk seam: resolve `gva` through whichever backend/granularity
  /// covers it, with the per-4 KiB GPA already computed.
  [[nodiscard]] Lookup lookup(Gva gva) noexcept {
    const Gva page = page_floor(gva);
    if (backend_ == TranslationBackend::kSegment) {
      Segment* s = segs_->find(page);
      if (s == nullptr) return {};
      return {&s->pte, PageGran::k4K, s->gpa_of(page)};
    }
    if (!table_.has_huge()) {
      Pte* e = table_.find(page);
      if (e == nullptr) return {};
      return {e, PageGran::k4K, e->gpa_page};
    }
    PageGran g;
    Pte* e = table_.find_leaf(page, g);
    if (e == nullptr) return {};
    return {e, g, e->gpa_page + gran_offset(page, g)};
  }

  /// Visit every *present* leaf as fn(gva_page, Pte&). Huge leaves and
  /// segments are visited once per covered 4 KiB page with the shared Pte,
  /// so flag-mutating consumers (clear_refs) stay backend-agnostic.
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    if (backend_ == TranslationBackend::kSegment) {
      segs_->for_each_segment([&](Segment& s) {
        for (u64 i = 0; i < s.pages; ++i) fn(s.gva_base + i * kPageSize, s.pte);
      });
      return;
    }
    if (!table_.has_huge()) {
      table_.for_each([&](u64 addr, Pte& e) {
        if (e.present) fn(addr, e);
      });
      return;
    }
    table_.for_each_leaf([&](u64 addr, Pte& e, PageGran g) {
      if (!e.present) return;
      for (u64 i = 0; i < gran_pages(g); ++i) fn(addr + i * kPageSize, e);
    });
  }

  /// Per-4 KiB view with the translated GPA computed per page — what the
  /// coherence audits (PT-1/PT-2) and pagemap re-derive from.
  template <typename Fn>
  void for_each_mapping(Fn&& fn) {
    if (backend_ == TranslationBackend::kSegment) {
      segs_->for_each_segment([&](Segment& s) {
        for (u64 i = 0; i < s.pages; ++i) {
          fn(s.gva_base + i * kPageSize, static_cast<const Pte&>(s.pte),
             s.gpa_base + i * kPageSize);
        }
      });
      return;
    }
    table_.for_each_leaf([&](u64 addr, Pte& e, PageGran g) {
      if (!e.present) return;
      for (u64 i = 0; i < gran_pages(g); ++i) {
        fn(addr + i * kPageSize, static_cast<const Pte&>(e),
           e.gpa_page + i * kPageSize);
      }
    });
  }

  /// Leaf-granularity view (radix backend): fn(base, Pte&, gran) for every
  /// present leaf, huge leaves NOT expanded. The GRAN-1 audit walks this.
  template <typename Fn>
  void for_each_leaf_present(Fn&& fn) {
    if (backend_ == TranslationBackend::kSegment) return;
    table_.for_each_leaf([&](u64 addr, Pte& e, PageGran g) {
      if (e.present) fn(addr, e, g);
    });
  }

  [[nodiscard]] u64 present_pages() const noexcept {
    return backend_ == TranslationBackend::kSegment ? segs_->present_pages()
                                                    : present_pages_;
  }

  // ---- segment backend ------------------------------------------------------
  [[nodiscard]] TranslationBackend backend() const noexcept { return backend_; }
  [[nodiscard]] SegmentTable* segment_table() noexcept { return segs_.get(); }
  [[nodiscard]] const SegmentTable* segment_table() const noexcept {
    return segs_.get();
  }
  /// Rebuild the table as segments coalesced from the present radix PTEs
  /// (contiguous GVA+GPA runs with identical flags merge — identical-only,
  /// so every TLB-cached derivation stays true across the conversion).
  /// Subsequent map/unmap calls operate on the segment table. Radix huge
  /// leaves must be split (or absent) first.
  void convert_to_segments();

  // ---- paging-structure walk cache (see RadixTable4) -------------------------
  void invalidate_walk_cache() const noexcept { table_.invalidate_walk_cache(); }
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    return backend_ == TranslationBackend::kSegment || table_.walk_cache_coherent();
  }
  /// Test-only: corrupt the walk cache so WALK-1 mutation tests can prove
  /// the coherence oracle notices.
  void debug_skew_walk_cache() noexcept { table_.debug_skew_walk_cache(); }

 private:
  friend struct ooh::snapshot::Access;

  RadixTable4<Pte> table_;
  std::unique_ptr<SegmentTable> segs_;
  TranslationBackend backend_ = TranslationBackend::kRadix;
  u64 present_pages_ = 0;
};

}  // namespace ooh::sim
