// The OoH kernel module -- the kernel half of the paper's UIO-style driver
// (§IV-B). It multiplexes the exposed hardware feature across processes:
//
//   SPML: hooks schedule-in/out of tracked processes to issue the
//         enable_logging/disable_logging hypercalls, and moves GPAs from
//         the hypervisor-shared ring into per-process rings (§V isolation).
//   EPML: performs the single setup hypercall (VMCS shadowing + guest PML),
//         toggles logging with guest-mode vmwrites at each switch, and
//         drains the guest-level buffer of GVAs on the posted self-IPI.
//
// SMP: PML sessions are per-vCPU hardware state, so the module keeps a
// per-vCPU session record (active pid, EPML shadow-VMCS init, drain
// reentrancy flags) and registers its scheduler hook on every vCPU's
// scheduler. A tracked process's hypercalls, vmwrites, drains and charges
// all land on the vCPU it is placed on. Tracked processes must stay on one
// vCPU for the EPML shadow-VMCS lifetime (track() initializes only the
// owning vCPU); track/untrack are quiescent-point operations.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/ring_buffer.hpp"
#include "base/types.hpp"
#include "guest/kernel.hpp"
#include "guest/scheduler.hpp"

namespace ooh::guest {

class OohModule final : public SchedHook {
 public:
  OohModule(GuestKernel& kernel, OohMode mode);
  ~OohModule() override;

  [[nodiscard]] OohMode mode() const noexcept { return mode_; }

  /// ioctl: register `proc` for dirty tracking (Table V metric M3 + the
  /// design's init hypercall M9/M10).
  void track(Process& proc);
  /// ioctl: stop tracking (M4 + M11/M12).
  void untrack(Process& proc);
  [[nodiscard]] bool tracking(const Process& proc) const;

  /// ioctl: drain the per-process ring into userspace. Entries are GPAs
  /// under SPML (the library reverse-maps them) and GVAs under EPML.
  [[nodiscard]] std::vector<u64> fetch(Process& proc);

  /// Entries lost to ring overflow since tracking began (consumer lagging).
  [[nodiscard]] u64 dropped(const Process& proc) const;

  /// Capacity of per-process rings created by future track() calls; the
  /// ring-pressure ablation shrinks this to study overflow behaviour.
  void set_ring_entries(std::size_t entries) noexcept { ring_entries_ = entries; }

  // ---- SchedHook -------------------------------------------------------------
  void on_schedule_in(u32 pid) override;
  void on_schedule_out(u32 pid) override;

  /// Self-IPI handler: vCPU `cpu`'s EPML guest-level buffer is full (called
  /// from the kernel's interrupt table). Reentrant delivery while that
  /// vCPU's drain is running defers the IPI; the in-progress drain
  /// redelivers it on completion.
  void handle_guest_pml_full(unsigned cpu);

  /// Test seam: run `hook` exactly once inside the next EPML drain, after
  /// the slots are copied but before the index reset — the window where a
  /// nested buffer-full IPI can arrive.
  void set_mid_drain_hook(std::function<void()> hook) {
    mid_drain_hook_ = std::move(hook);
  }

 private:
  struct Tracked {
    Process* proc = nullptr;
    std::unique_ptr<RingBuffer> ring;
    Gpa guest_buf_gpa = 0;  ///< EPML: guest-level PML buffer page.
  };
  /// Per-vCPU session state: one PML instance per vCPU.
  struct CpuSession {
    u32 active_pid = 0;    ///< tracked process scheduled in here (0 = none).
    bool epml_init = false;  ///< shadow VMCS armed on this vCPU.
    bool draining = false;   ///< EPML drain reentrancy guard.
    bool ipi_deferred = false;  ///< self-IPI arrived mid-drain; redeliver after.
  };

  void epml_drain_guest_buffer(Tracked& t, unsigned cpu);
  [[nodiscard]] Tracked* active_tracked(unsigned cpu) noexcept;

  GuestKernel& kernel_;
  OohMode mode_;
  std::unordered_map<u32, Tracked> tracked_;
  std::vector<CpuSession> cpus_;
  std::function<void()> mid_drain_hook_;
  std::size_t ring_entries_ = std::size_t{1} << 20;
};

}  // namespace ooh::guest
