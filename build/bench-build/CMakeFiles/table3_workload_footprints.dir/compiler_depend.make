# Empty compiler generated dependencies file for table3_workload_footprints.
# This may be replaced when dependencies are built.
