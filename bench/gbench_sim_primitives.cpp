// google-benchmark microbenches of the simulator itself (host wall-clock,
// not virtual time): MMU fast/slow paths, TLB, PML logging circuit, radix
// tables, ring buffer. These bound how big a --full experiment can get.
//
// This binary doubles as the perf-regression harness: CI runs it in Release
// with --benchmark_format=json and tools/check_bench_regression.py compares
// cpu_time against the committed baseline (bench/BENCH_PR9.json), failing on
// >2x regressions. Hot-path benches additionally export an `allocs_per_op`
// counter (via the replaced global operator new below) that the checker
// pins to zero — the steady-state hit path must never touch the heap.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

// The replaced operator new below is malloc-backed; GCC pairs the inlined
// malloc with the matching operator delete (also free-backed) and warns
// spuriously at every call site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <array>
#include <memory>
#include <vector>

#include "base/arena.hpp"
#include "base/ring_buffer.hpp"
#include "ooh/adaptive/adaptive_tracker.hpp"
#include "guest/kernel.hpp"
#include "ooh/epoch_run.hpp"
#include "hypervisor/dirty_ring.hpp"
#include "hypervisor/hypervisor.hpp"
#include "sim/machine.hpp"
#include "sim/mmu.hpp"
#include "sim/page_track.hpp"
#include "sim/radix.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "trackers/criu/checkpoint.hpp"

// ---- heap-allocation instrumentation ----------------------------------------
// Counts every scalar/array heap allocation in the process. Benchmarks that
// claim an allocation-free steady state snapshot the counter around their
// timing loop and export the per-iteration delta as `allocs_per_op`.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ooh {
namespace {

/// RAII exporter: measures heap allocations across the timing loop and
/// attaches the per-iteration average to the benchmark's counter set.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), before_(g_heap_allocs.load(std::memory_order_relaxed)) {}
  ~AllocCounter() {
    const std::uint64_t delta =
        g_heap_allocs.load(std::memory_order_relaxed) - before_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(delta) /
        static_cast<double>(state_.iterations() > 0 ? state_.iterations() : 1));
  }
  AllocCounter(const AllocCounter&) = delete;
  AllocCounter& operator=(const AllocCounter&) = delete;

 private:
  benchmark::State& state_;
  std::uint64_t before_;
};

struct MmuFixture {
  MmuFixture()
      : machine(2 * kGiB, CostModel::unit()),
        hv(machine),
        vm(hv.create_vm(kGiB)),
        mmu(vm.vcpu(), vm.ept()) {
    for (u64 i = 0; i < kPages; ++i) {
      pt.map(0x100000 + i * kPageSize, kPageSize + i * kPageSize, true);
    }
  }
  static constexpr u64 kPages = 4096;
  sim::Machine machine;
  hv::Hypervisor hv;
  hv::Vm& vm;
  sim::GuestPageTable pt;
  sim::Mmu mmu;
};

void BM_MmuWriteTlbHit(benchmark::State& state) {
  MmuFixture f;
  (void)f.mmu.access(1, f.pt, 0x100000, true);  // prime
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.mmu.access(1, f.pt, 0x100000, true));
  }
}
BENCHMARK(BM_MmuWriteTlbHit);

void BM_MmuWriteColdPages(benchmark::State& state) {
  MmuFixture f;
  u64 i = 0;
  for (auto _ : state) {
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(
        f.mmu.access(1, f.pt, 0x100000 + (i++ % MmuFixture::kPages) * kPageSize, true));
  }
}
BENCHMARK(BM_MmuWriteColdPages);

void BM_MmuWriteWithPmlLogging(benchmark::State& state) {
  MmuFixture f;
  f.hv.enable_pml_for_hyp(f.vm);
  u64 i = 0;
  for (auto _ : state) {
    // Touch a fresh page each time so the dirty transition (and log) fires.
    const u64 page = i++ % MmuFixture::kPages;
    sim::EptEntry* e = f.vm.ept().entry(kPageSize + page * kPageSize);
    if (e != nullptr) e->dirty = false;
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(f.mmu.access(1, f.pt, 0x100000 + page * kPageSize, true));
  }
}
BENCHMARK(BM_MmuWriteWithPmlLogging);

// Minimal kEptWpFault consumer: restores write permission like the wp
// tracker backend does, so the faulting walk can complete.
struct WpResolver final : sim::PageTrackNotifier {
  sim::EptEntry* e = nullptr;
  bool on_track(sim::TrackLayer, const sim::TrackEvent&) override {
    e->writable = true;
    return true;
  }
};

void BM_MmuWriteWpFault(benchmark::State& state) {
  // The wp-tracker hot loop: write hits a write-protected EPT entry, the
  // registered consumer resolves it, and the page is re-protected for the
  // next iteration. Every iteration pays the full walk plus the fault
  // dispatch — the cost wp-based tracking charges per first-touch.
  MmuFixture f;
  (void)f.mmu.access(1, f.pt, 0x100000, true);  // demand-allocate the frame
  WpResolver resolver;
  resolver.e = f.vm.ept().entry(kPageSize);
  f.vm.vcpu().track_registry().register_notifier(sim::TrackLayer::kEptWpFault,
                                                 &resolver);
  AllocCounter allocs(state);
  for (auto _ : state) {
    resolver.e->writable = false;
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(f.mmu.access(1, f.pt, 0x100000, true));
  }
  f.vm.vcpu().track_registry().unregister_notifier(
      sim::TrackLayer::kEptWpFault, &resolver);
}
BENCHMARK(BM_MmuWriteWpFault);

void BM_MmuWalk2MLeaves(benchmark::State& state) {
  // Cold walk resolved entirely through PS-bit leaves: one 2 MiB guest leaf
  // over one 2 MiB EPT leaf. The walk is two find_leaf probes instead of
  // two 4-level descents; the TLB fill caches the whole region.
  MmuFixture f;
  const Gva gva_base = 64 * kMiB;
  const Gpa gpa_base = 512 * kMiB;
  f.pt.map_huge(gva_base, gpa_base, PageGran::k2M, /*writable=*/true);
  const Hpa run = f.machine.pmem.alloc_frames_contiguous(gran_pages(PageGran::k2M));
  f.vm.ept().map_huge(gpa_base, run, PageGran::k2M, /*writable=*/true);
  u64 i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(
        f.mmu.access(1, f.pt, gva_base + (i++ % 512) * kPageSize, true));
  }
}
BENCHMARK(BM_MmuWalk2MLeaves);

void BM_EptEagerSplit2M(benchmark::State& state) {
  // One 2 MiB leaf shattered into 512 4 KiB children — the per-leaf host
  // cost KVM-style eager page splitting pays when dirty logging starts.
  // The leaf is rebuilt off-clock so each iteration splits fresh.
  sim::Ept ept;
  const Gpa base = 512 * kMiB;
  const Hpa run = 64 * kMiB;  // alignment is all map_huge checks
  ept.map_huge(base, run, PageGran::k2M, /*writable=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ept.split_huge_leaf(base, PageGran::k2M));
    state.PauseTiming();
    for (u64 i = 0; i < gran_pages(PageGran::k2M); ++i) {
      ept.unmap(base + i * kPageSize);
    }
    ept.map_huge(base, run, PageGran::k2M, /*writable=*/true);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EptEagerSplit2M)->Unit(benchmark::kMicrosecond);

// Every guest write funnels through WriteTrackRegistry::dispatch, so its
// per-event overhead must stay at a few ns even with several consumers.
struct NullNotifier final : sim::PageTrackNotifier {
  bool on_track(sim::TrackLayer, const sim::TrackEvent&) override {
    ++seen;
    return true;
  }
  u64 seen = 0;
};

void BM_PageTrackDispatch(benchmark::State& state) {
  sim::WriteTrackRegistry reg;
  std::vector<NullNotifier> notifiers(static_cast<std::size_t>(state.range(0)));
  for (NullNotifier& n : notifiers) {
    reg.register_notifier(sim::TrackLayer::kEptDirty, &n);
  }
  const sim::TrackEvent ev{nullptr, 1, 0x100000, 0x5000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.dispatch(sim::TrackLayer::kEptDirty, ev));
  }
  for (NullNotifier& n : notifiers) {
    reg.unregister_notifier(sim::TrackLayer::kEptDirty, &n);
  }
}
BENCHMARK(BM_PageTrackDispatch)->Arg(0)->Arg(1)->Arg(4);

void BM_RadixEnsureFind(benchmark::State& state) {
  sim::RadixTable4<u64> t;
  u64 addr = 0;
  for (auto _ : state) {
    t.ensure(addr) = addr;
    benchmark::DoNotOptimize(t.find(addr));
    addr += kPageSize;
  }
}
BENCHMARK(BM_RadixEnsureFind);

void BM_TlbLookupInsert(benchmark::State& state) {
  sim::Tlb tlb(1536);
  u64 i = 0;
  for (auto _ : state) {
    const Gva page = (i++ % 1024) * kPageSize;
    if (tlb.lookup(1, page) == nullptr) tlb.insert(1, page, {});
    benchmark::DoNotOptimize(tlb.lookup(1, page));
  }
}
BENCHMARK(BM_TlbLookupInsert);

void BM_TlbSteadyStateHit(benchmark::State& state) {
  // The pure hit path: fully warmed working set, no misses, no evictions.
  // allocs_per_op must read 0 — the array TLB is fixed-size by construction.
  sim::Tlb tlb(1536);
  for (u64 p = 0; p < 1024; ++p) tlb.insert(1, p * kPageSize, {});
  u64 i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(1, (i++ % 1024) * kPageSize));
  }
}
BENCHMARK(BM_TlbSteadyStateHit);

void BM_TlbLookupMiss(benchmark::State& state) {
  // Probe cost for an absent key with a realistically loaded index.
  sim::Tlb tlb(1536);
  for (u64 p = 0; p < 1024; ++p) tlb.insert(1, p * kPageSize, {});
  u64 i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(2, (i++ % 1024) * kPageSize));
  }
}
BENCHMARK(BM_TlbLookupMiss);

void BM_RadixFindWalkCacheHit(benchmark::State& state) {
  // All lookups land in one 2 MiB region, so every find after the first is
  // answered by the MRU-leaf memo without descending the tree.
  sim::RadixTable4<u64> t;
  for (u64 p = 0; p < 512; ++p) t.ensure(p * kPageSize) = p;
  u64 i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find((i++ % 512) * kPageSize));
  }
}
BENCHMARK(BM_RadixFindWalkCacheHit);

void BM_RadixFindWalkCacheMiss(benchmark::State& state) {
  // Alternate between two 2 MiB regions so the MRU tag misses every find
  // and the full 4-level descent runs.
  sim::RadixTable4<u64> t;
  t.ensure(0) = 1;
  t.ensure(512 * kPageSize) = 2;
  u64 i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find((i++ % 2) * 512 * kPageSize));
  }
}
BENCHMARK(BM_RadixFindWalkCacheMiss);

void BM_DirtyRingPushPop(benchmark::State& state) {
  // SPSC dirty-ring steady state, single-threaded: one push + one pop per
  // iteration. allocs_per_op must read 0 — the ring is fully preallocated.
  hv::DirtyRing ring(4096);
  u64 v = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    ring.try_push((v++) * kPageSize);
    u64 out = 0;
    ring.try_pop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DirtyRingPushPop);

void BM_DirtyRingConcurrentDrain(benchmark::State& state) {
  // Producer-side cost of try_push while a real consumer thread drains the
  // ring concurrently — the migration engine's concurrent-drain shape. The
  // measured loop is the vCPU side; the drainer runs off-loop.
  hv::DirtyRing ring(4096);
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    u64 out = 0;
    while (!stop.load(std::memory_order_acquire)) {
      while (ring.try_pop(out)) benchmark::DoNotOptimize(out);
      std::this_thread::yield();
    }
  });
  u64 v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push((v++) * kPageSize));
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
}
BENCHMARK(BM_DirtyRingConcurrentDrain);

void BM_TlbShootdownFlushPid(benchmark::State& state) {
  // mm_cpumask shootdown: flush a migrated process (mask spans both vCPUs),
  // paying one local flush walk plus one modelled remote IPI per call.
  sim::Machine machine(2 * kGiB, CostModel::unit());
  hv::Hypervisor hv(machine);
  hv::Vm& vm = hv.create_vm(kGiB, 1u << 20, 2);
  guest::GuestKernel kernel(hv, vm);
  guest::Process& proc = kernel.create_process();
  const Gva base = proc.mmap(kPageSize);
  proc.touch_write(base);
  kernel.migrate_process(proc, 1);
  for (auto _ : state) {
    kernel.tlb_flush_pid(proc);
  }
}
BENCHMARK(BM_TlbShootdownFlushPid);

void BM_RingBufferPushPop(benchmark::State& state) {
  RingBuffer rb(4096);
  u64 v = 0;
  for (auto _ : state) {
    rb.push(v++);
    u64 out = 0;
    rb.pop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RingBufferPushPop);

// ---- TestBed benches: setup vs steady state ---------------------------------
// Convention for every benchmark below that owns a TestBed: ALL setup (bed
// construction, process creation, mmap, prefault, tracker init) happens
// before the `for (auto _ : state)` loop, so cpu_time measures only the
// steady-state operation under test. Per-iteration re-preparation, where a
// bench needs it, goes through PauseTiming/ResumeTiming or — cheaper, and
// exact — a machine-snapshot warm start: save() once after setup, restore()
// to rewind (see BM_SnapshotWarmStartRestore). Do not fold setup into the
// timed loop; the committed baselines assume these semantics.

void BM_GuestProcessTouchWrite(benchmark::State& state) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  u64 i = 0;
  for (auto _ : state) {
    proc.touch_write(base + (i++ % 4096) * kPageSize);
  }
}
BENCHMARK(BM_GuestProcessTouchWrite);

void BM_TouchLoopPerPage(benchmark::State& state) {
  // Per-element loop over a warmed 4096-page region: the pre-PR4 shape of
  // every workload touch loop. Compare against BM_TouchRangePerPage.
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  proc.touch_range_write(base, 4096 * kPageSize);  // prefault
  for (auto _ : state) {
    for (u64 p = 0; p < 4096; ++p) proc.touch_write(base + p * kPageSize);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TouchLoopPerPage)->Unit(benchmark::kMicrosecond);

void BM_TouchRangePerPage(benchmark::State& state) {
  // Same access stream through the batched API: one TLB lookup per run of
  // same-page accesses, memoised entry pointer, identical virtual time.
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  proc.touch_range_write(base, 4096 * kPageSize);  // prefault
  for (auto _ : state) {
    proc.touch_range_write(base, 4096 * kPageSize);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TouchRangePerPage)->Unit(benchmark::kMicrosecond);

void BM_TouchRangeSubPageStride(benchmark::State& state) {
  // Sub-page stride (8 accesses per page) is where batching pays most: the
  // memoised entry pointer answers 7 of every 8 accesses.
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(512 * kPageSize);
  proc.touch_range_write(base, 512 * kPageSize);  // prefault
  for (auto _ : state) {
    proc.touch_range_write(base, 512 * kPageSize, /*stride=*/512);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TouchRangeSubPageStride)->Unit(benchmark::kMicrosecond);

void BM_EpmlTrackedWrite(benchmark::State& state) {
  // The full OoH hot path: tracked process write with guest-level logging on.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  u64 i = 0;
  for (auto _ : state) {
    proc.touch_write(base + (i++ % 4096) * kPageSize);
    if (i % 4096 == 0) (void)tracker->collect();  // keep the ring drained
  }
  k.scheduler().exit_process(proc.pid());
  tracker->shutdown();
}
BENCHMARK(BM_EpmlTrackedWrite);

void BM_TrackerCollect4kDirty(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  for (auto _ : state) {
    state.PauseTiming();
    k.scheduler().enter_process(proc.pid());
    for (u64 p = 0; p < 4096; ++p) proc.touch_write(base + p * kPageSize);
    k.scheduler().exit_process(proc.pid());
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracker->collect());
    tracker->begin_interval();
  }
  tracker->shutdown();
}
BENCHMARK(BM_TrackerCollect4kDirty)->Unit(benchmark::kMicrosecond);

void BM_WssEstimatorUpdate(benchmark::State& state) {
  // The adaptive control plane's sensing cost: fold one 512-page interval
  // sample into the open window, close it (EWMA update), open the next.
  // This runs once per collect() on every adaptive session, so it must stay
  // small next to the collect it annotates.
  lib::TestBed bed;
  lib::WssEstimator est(/*alpha=*/0.5);
  std::vector<Gva> pages(512);
  for (u64 i = 0; i < pages.size(); ++i) pages[i] = i * kPageSize;
  u64 w = 0;
  for (auto _ : state) {
    est.note_interval(1, pages, usecs(static_cast<double>(++w) * 100.0),
                      bed.ctx());
    benchmark::DoNotOptimize(est.signal(1));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_WssEstimatorUpdate)->Unit(benchmark::kMicrosecond);

void BM_PolicySwitchHandoff(benchmark::State& state) {
  // One full live backend handoff in each direction per iteration: a hot
  // 64-page interval flips wp -> EPML, an empty interval flips EPML -> wp.
  // Measures the whole switch protocol — old backend shutdown, new backend
  // init, estimator window close, policy decision — plus the interval's own
  // writes; the `switches` counter confirms the flip really ran every time.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(64 * kPageSize);
  proc.touch_range_write(base, 64 * kPageSize);  // prefault
  lib::AdaptiveOptions ao;
  ao.initial = lib::Technique::kEpml;
  ao.estimator_alpha = 1.0;  // signal == last window: flips deterministically
  ao.policy.warmup_windows = 0;
  ao.policy.min_windows_between_switches = 0;
  lib::AdaptiveTracker tracker(k, proc, ao);
  tracker.init();
  tracker.begin_interval();
  for (auto _ : state) {
    k.scheduler().enter_process(proc.pid());
    proc.touch_range_write(base, 64 * kPageSize);
    k.scheduler().exit_process(proc.pid());
    benchmark::DoNotOptimize(tracker.collect());  // hot window: -> EPML
    tracker.begin_interval();
    benchmark::DoNotOptimize(tracker.collect());  // empty window: -> wp
    tracker.begin_interval();
  }
  state.counters["switches"] = static_cast<double>(tracker.switches());
  tracker.shutdown();
}
BENCHMARK(BM_PolicySwitchHandoff)->Unit(benchmark::kMicrosecond);

void BM_GcAllocCollectCycle(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  gc::GcHeap heap(k, proc, 128 * kMiB, /*threshold=*/u64{64} * kGiB);
  k.scheduler().enter_process(proc.pid());
  const Gva root = heap.alloc(1, 0);
  heap.add_root(root);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) benchmark::DoNotOptimize(heap.alloc(1, 16));
    benchmark::DoNotOptimize(heap.collect());
  }
  k.scheduler().exit_process(proc.pid());
}
BENCHMARK(BM_GcAllocCollectCycle)->Unit(benchmark::kMicrosecond);

void BM_CheckpointDump256Pages(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(256 * kPageSize, /*data_backed=*/true);
  for (u64 p = 0; p < 256; ++p) proc.write_u64(base + p * kPageSize, p);
  criu::Checkpointer cp(k, lib::Technique::kOracle);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp.full_checkpoint(proc));
  }
}
BENCHMARK(BM_CheckpointDump256Pages)->Unit(benchmark::kMicrosecond);

// ---- snapshot / epoch primitives (PR 9) -------------------------------------

/// A realistically-loaded bed at a quiescent point: tracked history, backed
/// (data) frames, faulted translations. Shared setup for the snapshot
/// benches.
std::unique_ptr<lib::TestBed> loaded_bed() {
  auto bed = std::make_unique<lib::TestBed>();
  auto& k = bed->kernel();
  auto& proc = k.create_process();
  const u64 pages = 2048;
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  lib::RunOptions ro;
  ro.collect_period = msecs(1);
  (void)lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.write_u64(base + i * kPageSize, i);
      },
      tracker.get(), ro);
  tracker->shutdown();
  k.unload_ooh_module();  // snapshot quiescence
  return bed;
}

void BM_SnapshotSave(benchmark::State& state) {
  auto bed = loaded_bed();
  std::size_t stream = 0, frames = 0;
  for (auto _ : state) {
    snapshot::MachineSnapshot snap = bed->save();
    stream = snap.stream_bytes();
    frames = snap.frame_count();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["stream_bytes"] = static_cast<double>(stream);
  state.counters["frames_shared"] = static_cast<double>(frames);
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRestore(benchmark::State& state) {
  auto bed = loaded_bed();
  const snapshot::MachineSnapshot snap = bed->save();
  for (auto _ : state) {
    bed->restore(snap);
  }
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

void BM_SnapshotWarmStartRestore(benchmark::State& state) {
  // The warm-start pattern benches can use instead of per-iteration
  // re-setup: dirty the machine, then rewind to the post-setup boundary.
  // Timed section = one dirtying pass + one restore.
  auto bed = loaded_bed();
  const snapshot::MachineSnapshot boundary = bed->save();
  u32 pid = 0;
  bed->kernel().for_each_process(
      [&](guest::Process& p, sim::GuestPageTable&) { pid = p.pid(); });
  for (auto _ : state) {
    // restore() rebuilds Process objects, so re-resolve the handle per
    // rewind instead of holding a reference across iterations.
    guest::Process* proc = bed->kernel().find(pid);
    const Gva base = proc->vmas().front().start;
    for (u64 i = 0; i < 256; ++i) proc->write_u64(base + i * kPageSize, i);
    bed->restore(boundary);
  }
}
BENCHMARK(BM_SnapshotWarmStartRestore)->Unit(benchmark::kMicrosecond);

void BM_EpochMergeCounters(benchmark::State& state) {
  // The per-epoch -> machine-wide counter fold of the epoch merge path.
  std::vector<EventCounters> parts(16);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].add(Event::kPageFaultSoftDirty, i + 1);
    parts[i].add(Event::kPmlLogGpa, 3 * i);
    parts[i].add(Event::kHypercall, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib::merge_counters(parts));
  }
}
BENCHMARK(BM_EpochMergeCounters);

void BM_ArenaAllocRadixNode(benchmark::State& state) {
  // Bump-allocation of interior-node-shaped objects (512 slots, the radix
  // fan-out) with periodic wholesale reset — the allocation profile the
  // radix tables put on the arena. Steady state reuses warm blocks, so
  // allocs_per_op stays ~0 (only the first iterations grow the arena).
  struct Node {
    std::array<void*, 512> slots;
  };
  base::Arena arena;
  AllocCounter allocs(state);
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) benchmark::DoNotOptimize(arena.create<Node>());
    arena.reset();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ArenaAllocRadixNode);

}  // namespace
}  // namespace ooh

BENCHMARK_MAIN();
