// Ablation: use-after-free quarantine sweeps under each tracking technique.
//
// The quarantine allocator's dangling-pointer sweep re-scans only dirty
// pages after its first pass; the dirty-query cost is the technique-
// dependent part, exactly as in Boehm's mark phase.
#include "common.hpp"
#include "base/rng.hpp"
#include "trackers/uafguard/quarantine.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  const int blocks = args.full ? 30000 : 6000;

  bench::print_header("Ablation: UAF quarantine sweeps",
                      "sweep cost per technique, full pass vs dirty-driven re-sweeps");

  TextTable t({"technique", "full sweep (ms)", "resweep avg (ms)", "dirty query avg (ms)",
               "released", "held"});
  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml,
        lib::Technique::kOracle}) {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    uaf::QuarantineAllocator alloc(k, proc, 64 * kMiB, tech);
    k.scheduler().enter_process(proc.pid());

    Rng rng(11);
    std::vector<Gva> live;
    for (int i = 0; i < blocks; ++i) live.push_back(alloc.alloc(160));
    // Free a third; half of those keep a dangling pointer somewhere.
    const Gva cell_block = alloc.alloc(4096);
    u64 cell = 0;
    u64 released_total = 0, held_final = 0;
    for (int i = 0; i < blocks / 3; ++i) {
      const u64 victim_idx = rng.below(live.size());
      const Gva victim = live[victim_idx];
      if (victim == 0) continue;
      if (rng.below(2) == 0 && cell < 500) {
        proc.write_u64(cell_block + 8 * cell++, victim);  // dangle
      }
      alloc.free(victim);
      live[victim_idx] = 0;
    }

    const auto full = alloc.sweep();
    double resweep_ms = 0.0, query_ms = 0.0;
    const int resweeps = 5;
    for (int s = 0; s < resweeps; ++s) {
      // Light churn between sweeps.
      for (int i = 0; i < 50; ++i) {
        const Gva b = alloc.alloc(160);
        alloc.free(b);
      }
      const auto st = alloc.sweep();
      resweep_ms += st.time.count() / 1e3;
      query_ms += st.dirty_query.count() / 1e3;
      released_total += st.blocks_released;
      held_final = st.blocks_held;
    }
    k.scheduler().exit_process(proc.pid());
    t.add_row(std::string(lib::technique_name(tech)),
              {full.time.count() / 1e3, resweep_ms / resweeps, query_ms / resweeps,
               static_cast<double>(full.blocks_released + released_total),
               static_cast<double>(held_final)},
              2);
  }
  t.print(std::cout);
  std::printf("\nShape check: re-sweeps are cheap for EPML (ring read + dirty pages),\n"
              "expensive for /proc (full pagemap scan per sweep); dangling-referenced\n"
              "blocks stay held under every technique.\n");
  return 0;
}
