#include "sim/tlb.hpp"

#include <algorithm>

namespace ooh::sim {

namespace {

[[nodiscard]] constexpr std::size_t next_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

[[nodiscard]] inline u64 hash_key(u32 pid, Gva gva_page) noexcept {
  u64 h = page_index(gva_page) * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<u64>(pid) + 0x9E3779B97F4A7C15ULL) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 29);
}

constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

}  // namespace

Tlb::Tlb(std::size_t capacity) : capacity_(capacity) {
  // Everything is sized up front: the hit path and steady-state insert path
  // never allocate. At least one slot exists even with capacity 0 (an
  // insert transiently holds one entry before the next insert evicts it,
  // matching the previous implementation).
  const std::size_t slot_count = std::max<std::size_t>(capacity_, 1);
  slots_.resize(slot_count);
  const std::size_t buckets = next_pow2(std::max<std::size_t>(16, 2 * slot_count));
  index_.assign(buckets, kEmptyBucket);
  bucket_mask_ = buckets - 1;
}

std::size_t Tlb::bucket_of(u32 pid, Gva gva_page) const noexcept {
  return static_cast<std::size_t>(hash_key(pid, gva_page)) & bucket_mask_;
}

std::size_t Tlb::find_bucket(u32 pid, Gva gva_page) const noexcept {
  std::size_t b = bucket_of(pid, gva_page);
  while (index_[b] != kEmptyBucket) {
    const Slot& s = slots_[index_[b] - 1];
    if (s.pid == pid && s.gva_page == gva_page) return b;
    b = (b + 1) & bucket_mask_;
  }
  return kAbsent;
}

void Tlb::index_insert(u32 pid, Gva gva_page, std::size_t pos) noexcept {
  std::size_t b = bucket_of(pid, gva_page);
  while (index_[b] != kEmptyBucket) b = (b + 1) & bucket_mask_;
  index_[b] = static_cast<u32>(pos) + 1;
  slots_[pos].bucket = static_cast<u32>(b);
}

void Tlb::index_erase(std::size_t b) noexcept {
  // Backward-shift deletion: pull every displaced follower of the probe
  // chain into the hole so lookups never need tombstones.
  std::size_t hole = b;
  std::size_t j = (b + 1) & bucket_mask_;
  while (index_[j] != kEmptyBucket) {
    const Slot& s = slots_[index_[j] - 1];
    const std::size_t home = bucket_of(s.pid, s.gva_page);
    if (((j - home) & bucket_mask_) >= ((j - hole) & bucket_mask_)) {
      index_[hole] = index_[j];
      slots_[index_[j] - 1].bucket = static_cast<u32>(hole);
      hole = j;
    }
    j = (j + 1) & bucket_mask_;
  }
  index_[hole] = kEmptyBucket;
}

TlbEntry* Tlb::lookup(u32 pid, Gva gva_page) noexcept {
  assert((gva_page >> 48) == 0 && "GVA beyond the 48-bit canonical split");
  gva_page = page_floor(gva_page);  // tags are page-granular, as before
  const std::size_t b = find_bucket(pid, gva_page);
  if (b != kAbsent) return &slots_[index_[b] - 1].entry;
  if (huge_entries_ != 0) {
    // Region-base probes, smallest first (GRAN-1 means at most one hits).
    for (const PageGran g : {PageGran::k2M, PageGran::k1G}) {
      const std::size_t hb = find_bucket(pid, gran_floor(gva_page, g));
      if (hb != kAbsent && slots_[index_[hb] - 1].entry.gran == g) {
        return &slots_[index_[hb] - 1].entry;
      }
    }
  }
  return nullptr;
}

void Tlb::insert(u32 pid, Gva gva_page, const TlbEntry& entry) {
  assert((gva_page >> 48) == 0 &&
         "GVA beyond the 48-bit split would have aliased the old packed key");
  assert(is_gran_aligned(gva_page, entry.gran) &&
         "huge entries are keyed by their region base");
  gva_page = page_floor(gva_page);
  const std::size_t b = find_bucket(pid, gva_page);
  if (b != kAbsent) {
    // In-place refresh: the slot does not move, so memoised entry pointers
    // stay valid and re-read the new permission/dirty bits.
    TlbEntry& old = slots_[index_[b] - 1].entry;
    if (old.gran != PageGran::k4K) --huge_entries_;
    if (entry.gran != PageGran::k4K) ++huge_entries_;
    old = entry;
    return;
  }
  if (size_ >= capacity_ && size_ > 0) {
    // Pseudo-random victim (xorshift): real TLBs approximate random/PLRU;
    // strict FIFO thrashes pathologically on cyclic page strides. The
    // xorshift stream and the victim position over the dense slot array
    // replicate the previous map+vector implementation exactly, keeping
    // every hit/miss sequence — and therefore virtual time — bit-identical.
    rand_state_ ^= rand_state_ << 13;
    rand_state_ ^= rand_state_ >> 7;
    rand_state_ ^= rand_state_ << 17;
    evict_at(rand_state_ % size_);
  }
  const std::size_t pos = size_;
  slots_[pos].pid = pid;
  slots_[pos].gva_page = gva_page;
  slots_[pos].entry = entry;
  index_insert(pid, gva_page, pos);
  if (entry.gran != PageGran::k4K) ++huge_entries_;
  ++size_;
  ++generation_;
}

void Tlb::evict_at(std::size_t pos) noexcept {
  assert(pos < size_);
  if (slots_[pos].entry.gran != PageGran::k4K) --huge_entries_;
  index_erase(slots_[pos].bucket);
  const std::size_t last = size_ - 1;
  if (pos != last) {
    // Swap-with-last keeps the live range dense; re-point the moved key's
    // bucket (index_erase above kept every slot's bucket field current) at
    // its new position.
    slots_[pos] = slots_[last];
    index_[slots_[pos].bucket] = static_cast<u32>(pos) + 1;
  }
  size_ = last;
  ++generation_;
}

void Tlb::invalidate_page(u32 pid, Gva gva_page) noexcept {
  const std::size_t b = find_bucket(pid, page_floor(gva_page));
  if (b != kAbsent) {
    evict_at(index_[b] - 1);
    return;
  }
  if (huge_entries_ != 0) {
    // INVLPG semantics: a huge entry covering the page is dropped whole.
    for (const PageGran g : {PageGran::k2M, PageGran::k1G}) {
      const std::size_t hb = find_bucket(pid, gran_floor(gva_page, g));
      if (hb != kAbsent && slots_[index_[hb] - 1].entry.gran == g) {
        evict_at(index_[hb] - 1);
        return;
      }
    }
  }
}

void Tlb::invalidate_region(u32 pid, Gva base, PageGran gran) noexcept {
  const Gva lo = gran_floor(base, gran);
  const Gva hi = lo + gran_size(gran);
  // The region may be cached as one huge entry, 512 base-page entries, or a
  // mix; and a larger entry may cover the region. Downward scan mirrors
  // flush_pid's eviction order.
  for (std::size_t i = size_; i-- > 0;) {
    if (slots_[i].pid != pid) continue;
    const Gva s_lo = slots_[i].gva_page;
    const Gva s_hi = s_lo + gran_size(slots_[i].entry.gran);
    if (s_lo < hi && lo < s_hi) evict_at(i);
  }
}

void Tlb::flush_pid(u32 pid) noexcept {
  // Downward scan with swap-with-last eviction: elements swapped into
  // position i come from already-scanned tail positions, mirroring the
  // previous implementation's traversal (victim positions in later inserts
  // depend on this ordering).
  for (std::size_t i = size_; i-- > 0;) {
    if (slots_[i].pid == pid) evict_at(i);
  }
}

void Tlb::flush_all() noexcept {
  // Clear only the occupied buckets: a flush right after a service with few
  // live entries must not pay for the whole index array.
  for (std::size_t i = 0; i < size_; ++i) index_[slots_[i].bucket] = kEmptyBucket;
  size_ = 0;
  huge_entries_ = 0;
  ++generation_;
}

}  // namespace ooh::sim
