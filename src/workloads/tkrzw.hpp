// The five in-memory tkrzw key-value engines the paper injects set()
// requests into (§VI-A): baby (B-tree), cache (LRU), stdhash, stdtree and
// tiny. Each engine models its real data-structure page layout: an index
// region touched per insert (read path + written slots) plus a record arena
// of sequential appends, so the dirty-page profile matches the engine shape
// (tiny scatters writes across a huge bucket array, stdtree re-dirties tree
// paths, cache keeps a hot LRU head page, ...).
#pragma once

#include <optional>

#include "workloads/workload.hpp"

namespace ooh::wl {

class KvEngine : public Workload {
 public:
  struct Layout {
    u64 iterations = 0;
    u64 index_bytes = 0;    ///< bucket array / node index region.
    u64 record_bytes = 0;   ///< payload per record (arena append).
    u64 index_reads = 0;    ///< index pages read per set (tree path).
    u64 index_writes = 1;   ///< index pages written per set.
    bool hot_head_page = false;  ///< LRU-style hot page written every set.
    double extra_compute_us = 0.0;  ///< e.g. zlib record compression.
  };

  explicit KvEngine(Layout layout, bool data_backed = false)
      : layout_(layout), data_backed_(data_backed) {}

  [[nodiscard]] u64 footprint_bytes() const noexcept override {
    return layout_.index_bytes + layout_.iterations * layout_.record_bytes;
  }
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

  [[nodiscard]] u64 iterations() const noexcept { return layout_.iterations; }

  // ---- real store interface (data-backed mode) ------------------------------
  /// Insert/update a key: a genuine open-addressing hash store living in the
  /// engine's index region of guest memory.
  void put(guest::Process& proc, u64 key, u64 value);
  /// Look a key up from guest memory; nullopt when absent.
  [[nodiscard]] std::optional<u64> get(guest::Process& proc, u64 key);
  /// Rebind the store to a restored process image (same layout).
  [[nodiscard]] u64 kv_capacity() const noexcept;

 protected:
  void set(guest::Process& proc, u64 key);

  Layout layout_;
  bool data_backed_;
  Gva index_ = 0;
  Gva arena_ = 0;
  u64 arena_bytes_ = 0;
  u64 arena_cursor_ = 0;
  u64 count_ = 0;
};

class BabyEngine final : public KvEngine {
 public:
  BabyEngine(u64 iterations, u64 record_bytes, bool data_backed = false);
  [[nodiscard]] std::string_view name() const noexcept override { return "baby"; }
};

class CacheEngine final : public KvEngine {
 public:
  CacheEngine(u64 iterations, u64 cap_rec_num, u64 record_bytes,
              bool data_backed = false);
  [[nodiscard]] std::string_view name() const noexcept override { return "cache"; }
};

class StdHashEngine final : public KvEngine {
 public:
  StdHashEngine(u64 iterations, u64 buckets, u64 record_bytes,
                bool data_backed = false);
  [[nodiscard]] std::string_view name() const noexcept override { return "stdhash"; }
};

class StdTreeEngine final : public KvEngine {
 public:
  StdTreeEngine(u64 iterations, u64 record_bytes, bool data_backed = false);
  [[nodiscard]] std::string_view name() const noexcept override { return "stdtree"; }
};

class TinyEngine final : public KvEngine {
 public:
  TinyEngine(u64 iterations, u64 buckets, u64 record_bytes,
             bool data_backed = false);
  [[nodiscard]] std::string_view name() const noexcept override { return "tiny"; }
};

}  // namespace ooh::wl
