// Security & isolation properties (paper §V):
//   * the guest never sees host physical addresses (SPML logs GPAs, EPML
//     logs GVAs),
//   * per-guest rings: one VM's tracking session never observes another's,
//   * per-process rings: a tracked process's addresses are not visible to
//     other tracked processes (the reviewer-feedback fix),
//   * the guest cannot target memory outside its VM through OoH hypercalls.
#include <gtest/gtest.h>

#include <algorithm>

#include "guest/ooh_module.hpp"
#include "hypervisor/hypervisor.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

TEST(Security, SpmlRingCarriesGpasNotHpas) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  // Skew host frame numbers away from guest frame numbers so a leaked HPA
  // would be distinguishable by value (on a fresh machine both count up
  // from the same base).
  for (int i = 0; i < 64; ++i) (void)bed.machine().pmem.alloc_frame();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(8 * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kSpml);
  mod.track(proc);
  k.scheduler().enter_process(proc.pid());
  for (int i = 0; i < 8; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  // Collect the HPAs actually backing the process's pages, and its GPAs.
  std::set<Hpa> hpas;
  std::set<Gpa> gpas;
  k.page_table(proc).for_each_present([&](Gva, sim::Pte& pte) {
    gpas.insert(pte.gpa_page);
    Hpa hpa = 0;
    ASSERT_TRUE(bed.vm().ept().translate(pte.gpa_page, hpa));
    hpas.insert(page_floor(hpa));
  });
  for (const u64 entry : mod.fetch(proc)) {
    EXPECT_TRUE(gpas.contains(entry)) << "entries are the process's GPAs";
    EXPECT_FALSE(hpas.contains(entry))
        << "ring leaked a host physical address to the guest";
    EXPECT_LT(entry, bed.vm().mem_bytes()) << "entries are guest-physical";
  }
  mod.untrack(proc);
}

TEST(Security, EpmlRingCarriesGvas) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(4 * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.track(proc);
  k.scheduler().enter_process(proc.pid());
  for (int i = 0; i < 4; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  for (const u64 entry : mod.fetch(proc)) {
    EXPECT_NE(proc.vma_of(entry), nullptr)
        << "EPML entries are the process's own virtual addresses";
  }
  mod.untrack(proc);
}

TEST(Security, TenantVmsTrackIndependently) {
  lib::TestBedOptions opts;
  opts.tenant_vms = 2;
  lib::TestBed bed(opts);
  auto& k0 = bed.kernel(0);
  auto& k1 = bed.kernel(1);
  auto& p0 = k0.create_process();
  auto& p1 = k1.create_process();
  const Gva b0 = p0.mmap(4 * kPageSize);
  const Gva b1 = p1.mmap(6 * kPageSize);

  auto t0 = lib::make_tracker(lib::Technique::kSpml, k0, p0);
  auto t1 = lib::make_tracker(lib::Technique::kSpml, k1, p1);
  t0->init();
  t1->init();
  t0->begin_interval();
  t1->begin_interval();

  k0.scheduler().enter_process(p0.pid());
  for (int i = 0; i < 4; ++i) p0.touch_write(b0 + i * kPageSize);
  k0.scheduler().exit_process(p0.pid());
  k1.scheduler().enter_process(p1.pid());
  for (int i = 0; i < 6; ++i) p1.touch_write(b1 + i * kPageSize);
  k1.scheduler().exit_process(p1.pid());

  EXPECT_EQ(t0->collect().size(), 4u);
  EXPECT_EQ(t1->collect().size(), 6u);
  t0->shutdown();
  t1->shutdown();
}

TEST(Security, UntrackedProcessWritesNeverReachAnotherRing) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& victim = k.create_process();
  auto& spy = k.create_process();
  const Gva vb = victim.mmap(8 * kPageSize);
  const Gva sb = spy.mmap(8 * kPageSize);

  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.track(spy);  // the spy tracks itself, hoping to see the victim

  k.scheduler().enter_process(victim.pid());
  for (int i = 0; i < 8; ++i) victim.touch_write(vb + i * kPageSize);
  k.scheduler().exit_process(victim.pid());
  k.scheduler().enter_process(spy.pid());
  spy.touch_write(sb);
  k.scheduler().exit_process(spy.pid());

  const std::vector<u64> got = mod.fetch(spy);
  EXPECT_EQ(got, std::vector<u64>{sb})
      << "the spy's ring must contain only its own accesses (§V)";
  mod.untrack(spy);
}

TEST(Security, SppHypercallRejectsGpaBeyondVm) {
  lib::TestBed bed;
  auto& vm = bed.vm();
  const u64 ret =
      vm.vcpu().hypercall(sim::Hypercall::kOohSppProtect, vm.mem_bytes() + kPageSize, 0);
  EXPECT_EQ(ret, u64(-1)) << "SPP masks outside the VM's memory are rejected";
}

TEST(Security, HypervisorDirtyLogNotExposedThroughGuestRing) {
  // Live-migration logging (enabled_by_hyp) must not spill GPAs into a
  // guest ring that has no active SPML session.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(8 * kPageSize);
  bed.hypervisor().enable_pml_for_hyp(bed.vm());
  for (int i = 0; i < 8; ++i) proc.touch_write(base + i * kPageSize);
  EXPECT_EQ(bed.hypervisor().harvest_hyp_dirty(bed.vm()).size(), 8u);
  EXPECT_TRUE(bed.vm().spml_ring().empty());
  bed.hypervisor().disable_pml_for_hyp(bed.vm());
}

TEST(Security, DeactivationOrderingRespectsTheOtherSide) {
  // §IV-C item 3: the guest deactivating its session must leave the
  // hypervisor's logging armed, and vice versa.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  (void)proc.mmap(kPageSize);
  bed.hypervisor().enable_pml_for_hyp(bed.vm());
  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  tracker->init();
  tracker->shutdown();  // guest side gone
  EXPECT_TRUE(bed.vm().pml_enabled_by_hyp());
  EXPECT_TRUE(bed.vm().vcpu().vmcs().control(sim::kEnablePml))
      << "hypervisor logging survives guest deactivation";
  bed.hypervisor().disable_pml_for_hyp(bed.vm());
  EXPECT_FALSE(bed.vm().vcpu().vmcs().control(sim::kEnablePml));
}

}  // namespace
}  // namespace ooh
