// Extended Page Table: per-VM GPA -> HPA mapping with accessed/dirty flags.
//
// Intel PML's trigger point lives here: a write that sets an EPT entry's
// dirty flag during the nested walk logs the GPA to the PML buffer
// (SDM Vol. 3C, "Page-Modification Logging"). Leaves may sit at 4 KiB or,
// PS-bit style, at 2 MiB / 1 GiB; a huge leaf has ONE dirty flag for the
// whole region, which is exactly the precision loss eager page splitting
// (Ept::split_huge_leaf, driven by the hypervisor when dirty logging
// starts) exists to remove.
//
// Concurrency: the EPT is the one table N vCPUs of an SMP guest share. In
// the default single-threaded mode every access is lock-free (and the
// RadixTable4 MRU walk cache stays hot). set_concurrent(true) — flipped at a
// quiescent point before vCPU threads start — serializes every table access
// behind one mutex, which also covers the walk cache. Returned entry
// pointers stay valid across unlock (leaves are never freed); concurrent
// flag updates are safe as long as vCPUs touch *distinct* entries, which
// disjoint per-process GPA ranges guarantee.
#pragma once

#include "base/sync.hpp"
#include "base/types.hpp"
#include "sim/radix.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

struct EptEntry {
  Hpa hpa_page = 0;  ///< granularity-aligned HPA base.
  bool present : 1 = false;
  bool writable : 1 = false;
  bool accessed : 1 = false;
  bool dirty : 1 = false;
  /// Intel SPP: writes consult the sub-page permission table (sim/spp.hpp).
  bool spp : 1 = false;
};

class Ept {
 public:
  /// One resolved nested-walk step: the leaf (shared for huge regions), its
  /// granularity, and the 4 KiB-page HPA computed for the queried GPA.
  struct Lookup {
    EptEntry* entry = nullptr;
    PageGran gran = PageGran::k4K;
    Hpa hpa_page = 0;
  };

  void map(Gpa gpa_page, Hpa hpa_page, bool writable = true);
  void unmap(Gpa gpa_page);

  /// Install a present PS-bit leaf mapping the `gran`-sized region at
  /// gpa_base onto the HPA-contiguous run at hpa_base. The caller keeps
  /// GRAN-1 (no present smaller leaves beneath).
  void map_huge(Gpa gpa_base, Hpa hpa_base, PageGran gran, bool writable = true);
  void unmap_huge(Gpa gpa_base, PageGran gran);

  /// Shatter the huge leaf covering `gpa` into 512 present children one
  /// granularity down (1G -> 2M, 2M -> 4K), each inheriting the parent's
  /// permission and accessed/dirty/spp flags and mapping its slice of the
  /// parent's contiguous HPA run — KVM's eager-page-split primitive.
  /// Returns the number of children created (0 if no huge leaf covers gpa).
  /// Callers owe the EPT-side TLB shootdown, like unmap.
  u64 split_huge_leaf(Gpa gpa, PageGran gran);

  /// Leaf covering `gpa` at any granularity (PS-bit walk order: 1G, 2M,
  /// then 4K). For a huge leaf the entry's hpa_page is the region base.
  [[nodiscard]] EptEntry* entry(Gpa gpa) noexcept {
    const auto lock = lock_if_concurrent();
    // A "read" still rotates the MRU walk cache, so the table access is a
    // write for race-checking purposes: two unlocked concurrent walkers are
    // a real bug the schedule explorer must flag.
    OOH_SYNC_PLAIN_WRITE(&table_);
    return find_leaf_locked(gpa);
  }
  [[nodiscard]] const EptEntry* entry(Gpa gpa) const noexcept {
    return const_cast<Ept*>(this)->entry(gpa);
  }

  /// The nested-walk seam: leaf + granularity + per-4 KiB HPA for `gpa`.
  [[nodiscard]] Lookup lookup(Gpa gpa) noexcept {
    const auto lock = lock_if_concurrent();
    // Write, not read: find() rotates the MRU walk cache (see entry()).
    OOH_SYNC_PLAIN_WRITE(&table_);
    const Gpa page = page_floor(gpa);
    if (!table_.has_huge()) {
      EptEntry* e = table_.find(page);
      if (e == nullptr) return {};
      return {e, PageGran::k4K, e->hpa_page};
    }
    PageGran g;
    EptEntry* e = table_.find_leaf(page, g);
    if (e == nullptr) return {};
    return {e, g, e->hpa_page + gran_offset(page, g)};
  }

  /// GPA -> HPA for a present mapping; returns false when unmapped.
  [[nodiscard]] bool translate(Gpa gpa, Hpa& out) const noexcept;

  /// True when no present leaf (of any size) intersects the `gran`-sized
  /// region at `base` — the precondition map_huge's GRAN-1 contract needs.
  [[nodiscard]] bool range_unmapped(Gpa base, PageGran gran) noexcept;

  /// Visit every present leaf as fn(gpa_page, EptEntry&), huge leaves once
  /// per covered 4 KiB page with the shared entry (flag mutators stay
  /// granularity-agnostic; a huge region's flags clear once, as hardware's
  /// single leaf flag would).
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    const auto lock = lock_if_concurrent();
    if (!table_.has_huge()) {
      table_.for_each([&](u64 addr, EptEntry& e) {
        if (e.present) fn(addr, e);
      });
      return;
    }
    table_.for_each_leaf([&](u64 addr, EptEntry& e, PageGran g) {
      if (!e.present) return;
      for (u64 i = 0; i < gran_pages(g); ++i) fn(addr + i * kPageSize, e);
    });
  }

  /// Leaf-granularity view: fn(base, EptEntry&, gran) per present leaf,
  /// huge leaves NOT expanded — the GRAN-1 audit and the eager-split sweep.
  template <typename Fn>
  void for_each_leaf_present(Fn&& fn) {
    const auto lock = lock_if_concurrent();
    table_.for_each_leaf([&](u64 addr, EptEntry& e, PageGran g) {
      if (e.present) fn(addr, e, g);
    });
  }

  /// Per-4 KiB view with the HPA computed per page — what the frame-
  /// ownership audits re-derive from.
  template <typename Fn>
  void for_each_mapping(Fn&& fn) {
    const auto lock = lock_if_concurrent();
    table_.for_each_leaf([&](u64 addr, EptEntry& e, PageGran g) {
      if (!e.present) return;
      for (u64 i = 0; i < gran_pages(g); ++i) {
        fn(addr + i * kPageSize, static_cast<const EptEntry&>(e),
           e.hpa_page + i * kPageSize, g);
      }
    });
  }

  /// Present pages in 4 KiB units (a 2 MiB leaf counts 512).
  [[nodiscard]] u64 present_pages() const noexcept { return present_pages_; }
  /// Present PS-bit leaves — zero while an eager-split session is closed
  /// (SPLIT-1).
  [[nodiscard]] u64 huge_leaves() const noexcept { return huge_present_; }

  /// Enter/leave intra-VM concurrent mode. Only call at quiescent points
  /// (no vCPU thread running); with `on`, every table access serializes
  /// behind an internal mutex. Off (the default) is the zero-overhead
  /// single-timeline mode — N=1 behaviour is unchanged.
  void set_concurrent(bool on) noexcept { concurrent_ = on; }
  [[nodiscard]] bool concurrent() const noexcept { return concurrent_; }

  // ---- paging-structure walk cache (see RadixTable4) -------------------------
  void invalidate_walk_cache() const noexcept {
    const auto lock = lock_if_concurrent();
    table_.invalidate_walk_cache();
  }
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    const auto lock = lock_if_concurrent();
    return table_.walk_cache_coherent();
  }
  /// Test-only: corrupt the walk cache so WALK-1 mutation tests can prove
  /// the coherence oracle notices.
  void debug_skew_walk_cache() noexcept { table_.debug_skew_walk_cache(); }

 private:
  friend struct ooh::snapshot::Access;

  [[nodiscard]] EptEntry* find_leaf_locked(Gpa gpa) noexcept {
    const Gpa page = page_floor(gpa);
    if (!table_.has_huge()) return table_.find(page);
    PageGran g;
    return table_.find_leaf(page, g);
  }

  [[nodiscard]] sync::UniqueLock lock_if_concurrent() const {
    return concurrent_ ? sync::UniqueLock(mu_) : sync::UniqueLock();
  }

  RadixTable4<EptEntry> table_;
  u64 present_pages_ = 0;
  u64 huge_present_ = 0;
  bool concurrent_ = false;
  mutable sync::Mutex mu_;
};

}  // namespace ooh::sim
