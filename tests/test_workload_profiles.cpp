// Per-application dirty-profile tests: each engine/app must reproduce the
// page-level write behaviour its real counterpart is known for, since that
// is what makes the dirty-tracking benches meaningful.
#include <gtest/gtest.h>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "workloads/phoenix.hpp"
#include "workloads/registry.hpp"
#include "workloads/tkrzw.hpp"

namespace ooh::wl {
namespace {

struct ProfileResult {
  u64 dirty_pages = 0;
  u64 mapped_pages = 0;
  u64 reads = 0;
  double time_us = 0.0;
};

ProfileResult profile(Workload& w) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  w.setup(proc);
  proc.truth_reset();
  const u64 reads_before = bed.ctx().counters.get(Event::kTlbHit) +
                           bed.ctx().counters.get(Event::kTlbMiss);
  const VirtDuration start = bed.ctx().clock.now();
  w.run(proc);
  ProfileResult r;
  r.time_us = (bed.ctx().clock.now() - start).count();
  r.dirty_pages = proc.truth_dirty().size();
  r.mapped_pages = pages_for_bytes(proc.mapped_bytes());
  r.reads = bed.ctx().counters.get(Event::kTlbHit) +
            bed.ctx().counters.get(Event::kTlbMiss) - reads_before;
  return r;
}

// ---- tkrzw engines ---------------------------------------------------------------

TEST(Profiles, BabyDirtiesArenaAndIndex) {
  BabyEngine w(20'000, 80);
  const ProfileResult r = profile(w);
  // Records: 20k x 80B ~ 391 arena pages, plus index writes.
  EXPECT_GT(r.dirty_pages, 390u);
  EXPECT_GT(r.reads, 20'000u * 2) << "B-tree descent reads the index per set";
}

TEST(Profiles, CacheKeepsAHotHeadPage) {
  CacheEngine w(10'000, 10'000, 64);
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  w.setup(proc);
  proc.truth_reset();
  w.run(proc);
  // The LRU head page is re-written on every set: its last-write sequence
  // must be near the global maximum.
  u64 max_seq = 0;
  for (const auto& [page, seq] : proc.truth_dirty()) max_seq = std::max(max_seq, seq);
  bool found_hot = false;
  for (const auto& [page, seq] : proc.truth_dirty()) {
    if (seq + 16 >= max_seq) found_hot = true;
  }
  EXPECT_TRUE(found_hot);
  EXPECT_GT(proc.truth_dirty().size(), 100u);
}

TEST(Profiles, StdHashPaysCompressionCompute) {
  // Same iteration count; the zlib-modelled engine must burn more time per
  // set than the plain cache engine.
  StdHashEngine zlib(5'000, 100'000, 120);
  CacheEngine plain(5'000, 5'000, 120);
  const ProfileResult rz = profile(zlib);
  const ProfileResult rp = profile(plain);
  EXPECT_GT(rz.time_us, rp.time_us + 5'000.0 * 1.0)
      << "-record_comp zlib must cost extra CPU per record";
}

TEST(Profiles, StdTreeTouchesLogDepthPaths) {
  StdTreeEngine w(10'000, 104);
  const ProfileResult r = profile(w);
  // Binary descent: >= log2(count) index reads per set on average by the end.
  EXPECT_GT(r.reads, 10'000u * 6);
  EXPECT_GT(r.dirty_pages, 250u);
}

TEST(Profiles, TinyDirtyFootprintScalesWithBuckets) {
  TinyEngine small_buckets(20'000, 10'000, 32);
  TinyEngine big_buckets(20'000, 1'000'000, 32);
  const ProfileResult rs = profile(small_buckets);
  const ProfileResult rb = profile(big_buckets);
  EXPECT_GT(rb.dirty_pages, rs.dirty_pages * 3)
      << "-buckets 30M is what spreads tiny's writes so widely";
}

// ---- Phoenix apps ----------------------------------------------------------------

TEST(Profiles, MatrixMultiplyWritesExactlyTheOutputMatrix) {
  MatrixMultiply w(256);  // 256x256 int32: C = 64 pages
  const ProfileResult r = profile(w);
  EXPECT_EQ(r.dirty_pages, pages_for_bytes(256 * 256 * 4));
}

TEST(Profiles, PcaWritesMeansAndCovOnly) {
  Pca w(512, 512, 64);
  const ProfileResult r = profile(w);
  const u64 out_pages = pages_for_bytes(512 * 8) + pages_for_bytes(64 * 64 * 4);
  EXPECT_LE(r.dirty_pages, out_pages + 2);
  EXPECT_GT(r.reads, pages_for_bytes(512 * 512 * 4) * 2u - 10u)
      << "pca reads the matrix twice (means pass + covariance pass)";
}

TEST(Profiles, StringMatchWritesSparsely) {
  StringMatch w(8 * kMiB);
  const ProfileResult r = profile(w);
  EXPECT_LT(r.dirty_pages * 4, r.mapped_pages) << "output is a small fraction";
}

TEST(Profiles, WordCountScattersAcrossTheTable) {
  WordCount w(8 * kMiB);
  const ProfileResult r = profile(w);
  // The hash table is half the input; scattered inserts should dirty most of it.
  EXPECT_GT(r.dirty_pages, pages_for_bytes(4 * kMiB) / 2);
}

TEST(Profiles, HistogramRunTimeDominatedByReads) {
  Histogram w(8 * kMiB);
  const ProfileResult r = profile(w);
  EXPECT_LT(r.dirty_pages, 8u);
  EXPECT_GE(r.reads / std::max<u64>(r.dirty_pages, 1), 100u);
}

// ---- determinism -----------------------------------------------------------------

TEST(Profiles, WorkloadsAreDeterministic) {
  for (const std::string_view app : {"baby", "word-count", "kmeans"}) {
    auto w1 = make_workload(app, ConfigSize::kSmall, 128);
    auto w2 = make_workload(app, ConfigSize::kSmall, 128);
    const ProfileResult a = profile(*w1);
    const ProfileResult b = profile(*w2);
    EXPECT_EQ(a.dirty_pages, b.dirty_pages) << app;
    EXPECT_DOUBLE_EQ(a.time_us, b.time_us) << app;
  }
}

}  // namespace
}  // namespace ooh::wl
