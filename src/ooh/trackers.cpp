#include "ooh/trackers.hpp"

#include <new>
#include <unordered_map>

#include "base/clock.hpp"
#include "guest/ooh_module.hpp"
#include "ooh/adaptive/adaptive_tracker.hpp"
#include "guest/procfs.hpp"
#include "guest/uffd.hpp"

namespace ooh::lib {
namespace {

/// Load (or re-load) the OoH kernel module in the requested mode. One design
/// is active per guest at a time, matching the paper's prototypes.
guest::OohModule& ensure_module(guest::GuestKernel& kernel, guest::OohMode mode) {
  guest::OohModule* mod = kernel.ooh_module();
  if (mod != nullptr && mod->mode() != mode) {
    kernel.unload_ooh_module();
    mod = nullptr;
  }
  return mod != nullptr ? *mod : kernel.load_ooh_module(mode);
}

}  // namespace

// ---- ProcTracker ------------------------------------------------------------

void ProcTracker::do_begin_interval() {
  kernel_.procfs().clear_refs(proc_);
}

std::vector<Gva> ProcTracker::do_collect() {
  return kernel_.procfs().pagemap_dirty(proc_);
}

// ---- UfdTracker --------------------------------------------------------------

void UfdTracker::do_init() {
  kernel_.uffd().register_wp(
      proc_, [this](Gva page) { pending_.insert(page); }, &phases_.monitor);
}

void UfdTracker::do_begin_interval() {
  // Registration already write-protected everything; later intervals must
  // re-protect so second writes to the same page fault again.
  if (first_interval_) {
    first_interval_ = false;
    return;
  }
  kernel_.uffd().rearm_wp(proc_);
}

std::vector<Gva> UfdTracker::do_collect() {
  std::vector<Gva> out(pending_.begin(), pending_.end());
  pending_.clear();
  return out;
}

void UfdTracker::do_shutdown() {
  kernel_.uffd().unregister(proc_);
}

// ---- SpmlTracker -------------------------------------------------------------

SpmlTracker::~SpmlTracker() {
  if (flush_registered_) kernel_.vm().track().unregister_flush(this);
}

bool SpmlTracker::on_track(sim::TrackLayer /*layer*/, const sim::TrackEvent& /*ev*/) {
  return false;  // SPML only listens on the flush chain.
}

void SpmlTracker::on_track_flush(u32 pid, Gva start, Gva end) {
  if (pid != proc_.pid()) return;
  // The unmapped range's translations are dead; its guest frames can be
  // recycled into other VMAs, where a cached entry would reverse-map the
  // new GPA hit to the old address (mirrors KVM's track_flush_slot).
  std::erase_if(rmap_cache_, [start, end](const auto& kv) {
    return kv.second >= start && kv.second < end;
  });
}

void SpmlTracker::do_init() {
  module_ = &ensure_module(kernel_, guest::OohMode::kSpml);
  module_->track(proc_);
  if (!flush_registered_) {
    kernel_.vm().track().register_flush(this);
    flush_registered_ = true;
  }
}

std::vector<Gva> SpmlTracker::do_collect() {
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  std::vector<u64> gpas = module_->fetch(proc_);  // GPAs; charges the RB copy

  // Deduplicate: a page drained more than once re-logs within the interval.
  std::sort(gpas.begin(), gpas.end());
  gpas.erase(std::unique(gpas.begin(), gpas.end()), gpas.end());

  // Reverse mapping GPA -> GVA (§IV-C item 2): a userspace page-table scan
  // through /proc (M16) plus a per-GPA lookup (M17) -- the dominant SPML
  // term (Fig. 3). Resolved addresses are cached and reused by later
  // intervals, as the paper's Boehm integration does (§VI-E footnote 2), so
  // only GPAs never seen before pay the cost.
  const bool any_miss =
      std::any_of(gpas.begin(), gpas.end(),
                  [&](Gpa g) { return !rmap_cache_.contains(g); });
  if (any_miss) {
    m.count(Event::kPagemapScan);
    m.charge_us(m.cost.pagemap_scan_us(proc_.mapped_bytes()));
    const double per_page = m.cost.reverse_map_per_page_us(proc_.mapped_bytes());
    std::unordered_map<Gpa, Gva> current;
    for (const auto& [gva, gpa] : kernel_.procfs().pagemap_entries(proc_)) {
      current.emplace(gpa, gva);
    }
    for (const Gpa gpa : gpas) {
      if (rmap_cache_.contains(gpa)) continue;
      m.count(Event::kReverseMapLookup);
      m.charge_us(per_page);
      if (const auto it = current.find(gpa); it != current.end()) {
        rmap_cache_.emplace(gpa, it->second);
      }
    }
  }
  std::vector<Gva> out;
  out.reserve(gpas.size());
  for (const Gpa gpa : gpas) {
    if (const auto it = rmap_cache_.find(gpa); it != rmap_cache_.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

void SpmlTracker::do_shutdown() {
  if (module_ != nullptr && module_->tracking(proc_)) module_->untrack(proc_);
  if (flush_registered_) {
    kernel_.vm().track().unregister_flush(this);
    flush_registered_ = false;
  }
}

u64 SpmlTracker::do_dropped() const {
  return module_ != nullptr && module_->tracking(proc_) ? module_->dropped(proc_)
                                                        : 0;
}

// ---- EpmlTracker -------------------------------------------------------------

void EpmlTracker::do_init() {
  module_ = &ensure_module(kernel_, guest::OohMode::kEpml);
  module_->track(proc_);
}

std::vector<Gva> EpmlTracker::do_collect() {
  // The hardware already logged GVAs: collection is a ring-buffer read.
  return module_->fetch(proc_);
}

void EpmlTracker::do_shutdown() {
  if (module_ != nullptr && module_->tracking(proc_)) module_->untrack(proc_);
}

u64 EpmlTracker::do_dropped() const {
  return module_ != nullptr && module_->tracking(proc_) ? module_->dropped(proc_)
                                                        : 0;
}

// ---- WpTracker ---------------------------------------------------------------

WpTracker::~WpTracker() {
  if (registered_) {
    for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
      sim::WriteTrackRegistry& track = kernel_.vm().track(cpu);
      track.unregister_notifier(sim::TrackLayer::kEptDirty, this);
      track.unregister_notifier(sim::TrackLayer::kEptWpFault, this);
    }
  }
}

bool WpTracker::on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) {
  if (layer == sim::TrackLayer::kEptDirty) {
    // A write dirtied an entry the protect pass never saw (page mapped
    // after it, e.g. by demand paging): no permission fault will fire for
    // it this interval, so record it here. collect() re-protects it.
    if (ev.pid != proc_.pid()) return false;
    pending_.insert(ev.gva_page);
    return true;
  }
  // kEptWpFault: a write hit an entry we protected. On real hardware this
  // is an EPT violation; the root-mode handler records the page, restores
  // write access, and invalidates the stale translation before resuming.
  if (!protected_.contains(ev.gpa_page)) return false;
  sim::Vcpu& vcpu = *ev.vcpu;
  sim::ExecContext& m = vcpu.ctx();
  VirtualClock::Scope attributed(m.clock, phases_.monitor);
  m.charge_us(m.cost.ept_violation_us);
  vcpu.vmexit_to_root(Event::kVmExitEptViolation, [&] {
    sim::EptEntry* e = vcpu.ept()->entry(ev.gpa_page);
    if (e != nullptr) e->writable = true;
    protected_.erase(ev.gpa_page);
    vcpu.tlb().invalidate_page(ev.pid, ev.gva_page);
  });
  if (ev.pid == proc_.pid()) pending_.insert(ev.gva_page);
  return true;
}

void WpTracker::protect_pages(const std::vector<Gva>& pages) {
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  sim::Ept& ept = kernel_.vm().ept();
  sim::GuestPageTable& pt = kernel_.page_table(proc_);
  u64 protected_count = 0;
  for (const Gva page : pages) {
    const sim::Pte* pte = pt.pte(page);
    if (pte == nullptr || !pte->present) continue;
    sim::EptEntry* e = ept.entry(pte->gpa_page);
    if (e == nullptr || !e->present || !e->writable) continue;
    e->writable = false;
    protected_.insert(pte->gpa_page);
    ++protected_count;
  }
  m.charge_ns(m.cost.dbit_clear_ns * static_cast<double>(protected_count));
  // Cached translations may still claim write permission for the protected
  // pages; without this shootdown their writes would bypass the fault.
  kernel_.tlb_flush_pid(proc_);
  m.count(Event::kTlbFlush);
  m.charge_us(m.cost.tlb_flush_us);
}

void WpTracker::do_init() {
  if (kernel_.ctx_of(proc_).fault_fire(sim::fault::FaultPoint::kWpProtectFail)) {
    // Injected failure of the write-protect pass (KVM's page_track rmap
    // allocation returning ENOMEM): degrade before touching any EPT entry.
    throw std::bad_alloc{};
  }
  // EPT dirty/WP events dispatch on the chain of the vCPU that executed
  // the write, so listen on every vCPU's chain (each event fires on exactly
  // one of them).
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    sim::WriteTrackRegistry& track = kernel_.vm().track(cpu);
    track.register_notifier(sim::TrackLayer::kEptWpFault, this);
    track.register_notifier(sim::TrackLayer::kEptDirty, this);
  }
  registered_ = true;
  // Initial protect pass over everything currently mapped (one ioctl-shaped
  // syscall), like KVM's page_track write-protecting a whole memslot.
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(2 * m.cost.ctx_switch_us);
  std::vector<Gva> present;
  kernel_.page_table(proc_).for_each_present(
      [&](Gva gva, sim::Pte&) { present.push_back(gva); });
  protect_pages(present);
}

std::vector<Gva> WpTracker::do_collect() {
  std::vector<Gva> out(pending_.begin(), pending_.end());
  pending_.clear();
  // Interval boundary: re-protect the harvested pages so their next write
  // faults (and re-logs) again.
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(2 * m.cost.ctx_switch_us);
  protect_pages(out);
  return out;
}

void WpTracker::do_shutdown() {
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  sim::Ept& ept = kernel_.vm().ept();
  u64 unprotected = 0;
  for (const Gpa gpa : protected_) {
    if (sim::EptEntry* e = ept.entry(gpa); e != nullptr && !e->writable) {
      e->writable = true;
      ++unprotected;
    }
  }
  protected_.clear();
  pending_.clear();
  m.charge_ns(m.cost.dbit_clear_ns * static_cast<double>(unprotected));
  kernel_.tlb_flush_pid(proc_);
  m.count(Event::kTlbFlush);
  m.charge_us(m.cost.tlb_flush_us);
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    sim::WriteTrackRegistry& track = kernel_.vm().track(cpu);
    track.unregister_notifier(sim::TrackLayer::kEptDirty, this);
    track.unregister_notifier(sim::TrackLayer::kEptWpFault, this);
  }
  registered_ = false;
}

// ---- SegTracker --------------------------------------------------------------

void SegTracker::do_init() {
  sim::GuestPageTable& pt = kernel_.page_table(proc_);
  if (pt.backend() == sim::TranslationBackend::kSegment) return;
  // One syscall-shaped conversion pass over the whole page table (modelled
  // as a clear_refs-sized walk), then drop every cached translation: the
  // per-segment sticky flags may widen derived permissions, so stale
  // per-page entries must not survive the backend swap.
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.clear_refs_us(proc_.mapped_bytes()) +
              2 * m.cost.ctx_switch_us);
  pt.convert_to_segments();
  kernel_.tlb_flush_pid(proc_);
  m.count(Event::kTlbFlush);
  m.charge_us(m.cost.tlb_flush_us);
}

void SegTracker::do_begin_interval() {
  kernel_.procfs().clear_refs(proc_);
}

std::vector<Gva> SegTracker::do_collect() {
  // Superset semantics: pagemap_dirty expands each soft-dirty segment to
  // every page it covers.
  return kernel_.procfs().pagemap_dirty(proc_);
}

// ---- OracleTracker -----------------------------------------------------------

void OracleTracker::do_begin_interval() {
  baseline_seq_ = proc_.truth_seq();
}

std::vector<Gva> OracleTracker::do_collect() {
  std::vector<Gva> out;
  for (const auto& [page, seq] : proc_.truth_dirty()) {
    if (seq > baseline_seq_) out.push_back(page);
  }
  return out;
}

// ---- factory -------------------------------------------------------------------

std::unique_ptr<DirtyTracker> make_tracker(Technique t, guest::GuestKernel& kernel,
                                           guest::Process& proc) {
  switch (t) {
    case Technique::kProc: return std::make_unique<ProcTracker>(kernel, proc);
    case Technique::kUfd: return std::make_unique<UfdTracker>(kernel, proc);
    case Technique::kSpml: return std::make_unique<SpmlTracker>(kernel, proc);
    case Technique::kEpml: return std::make_unique<EpmlTracker>(kernel, proc);
    case Technique::kWp: return std::make_unique<WpTracker>(kernel, proc);
    case Technique::kSeg: return std::make_unique<SegTracker>(kernel, proc);
    case Technique::kOracle: return std::make_unique<OracleTracker>(kernel, proc);
    case Technique::kAdaptive:
      return std::make_unique<AdaptiveTracker>(kernel, proc);
  }
  throw std::invalid_argument("unknown technique");
}

}  // namespace ooh::lib
