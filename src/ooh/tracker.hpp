// The OoH userspace library: a unified dirty-page tracker API over the four
// techniques the paper compares (/proc, userfaultfd, SPML, EPML), a
// KVM-page_track-style write-protection backend (wp), and an oracle
// (zero-cost ground truth, the hypothetical technique of §VI-B).
//
// Tracker lifecycle:
//     init()            one-time setup (ufd registration, OoH PML init)
//     begin_interval()  arm tracking for a new interval (clear_refs, re-WP)
//     ... tracked process runs ...
//     collect()         harvest dirty GVAs for the interval
//     shutdown()        teardown
//
// Per-phase virtual time is attributed to Phases so benches can report the
// paper's Tracker-side costs (Fig. 3, Table I "On Tracker").
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "guest/kernel.hpp"
#include "guest/process.hpp"

namespace ooh::lib {

enum class Technique { kProc, kUfd, kSpml, kEpml, kWp, kSeg, kOracle, kAdaptive };

[[nodiscard]] std::string_view technique_name(Technique t) noexcept;

/// Tracker-side time split by lifecycle phase.
struct Phases {
  VirtDuration init{0};
  VirtDuration arm{0};       ///< begin_interval total (clear_refs / re-protect).
  VirtDuration collect{0};   ///< address-collection total (incl. reverse map).
  VirtDuration monitor{0};   ///< tracker work during monitoring (ufd fault service).
  u64 intervals = 0;
  u64 collected_pages = 0;   ///< sum over intervals (after per-interval dedup).

  [[nodiscard]] VirtDuration tracker_total() const noexcept {
    return init + arm + collect + monitor;
  }
};

class DirtyTracker {
 public:
  DirtyTracker(guest::GuestKernel& kernel, guest::Process& proc)
      : kernel_(kernel), proc_(proc) {}
  virtual ~DirtyTracker() = default;

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  [[nodiscard]] virtual Technique technique() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return technique_name(technique());
  }

  /// One-time setup. If the backend's resources cannot be allocated
  /// (bad_alloc — real or injected), the tracker degrades gracefully: it
  /// constructs its fallback_technique() tracker and delegates the whole
  /// lifecycle to it, counting Event::kTrackerDegraded. Techniques with no
  /// weaker sibling rethrow.
  ///
  /// The lifecycle is virtual so composing trackers (AdaptiveTracker) can
  /// delegate whole-hog to a live backend without double-counting the
  /// wrapper accounting this base performs (kTrackerCollect, phase scopes,
  /// dedup); concrete backends override the protected do_* hooks only.
  virtual void init();
  virtual void begin_interval();
  /// Dirty page GVAs (page-aligned, deduplicated, sorted) for the interval.
  [[nodiscard]] virtual std::vector<Gva> collect();
  virtual void shutdown();

  /// Pages known to have been lost (ring overflow). 0 for exact techniques.
  [[nodiscard]] virtual u64 dropped() const {
    return fallback_ ? fallback_->dropped() : do_dropped();
  }

  /// True when init() fell back to a weaker technique.
  [[nodiscard]] bool degraded() const noexcept { return fallback_ != nullptr; }
  /// The technique actually doing the tracking (the fallback's when degraded).
  [[nodiscard]] virtual Technique effective_technique() const noexcept {
    return fallback_ ? fallback_->effective_technique() : technique();
  }

  [[nodiscard]] virtual const Phases& phases() const noexcept {
    return fallback_ ? fallback_->phases() : phases_;
  }
  [[nodiscard]] guest::Process& process() noexcept { return proc_; }

 protected:
  virtual void do_init() = 0;
  virtual void do_begin_interval() = 0;
  [[nodiscard]] virtual std::vector<Gva> do_collect() = 0;
  virtual void do_shutdown() = 0;
  [[nodiscard]] virtual u64 do_dropped() const { return 0; }
  /// The weaker technique to degrade to when do_init() hits bad_alloc.
  /// Returning the tracker's own technique means "no fallback: rethrow".
  [[nodiscard]] virtual Technique fallback_technique() const noexcept {
    return technique();
  }

  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  Phases phases_;
  std::unique_ptr<DirtyTracker> fallback_;  ///< set when init() degraded.
};

/// Factory over the technique enum; SPML/EPML load the OoH kernel module on
/// init() if it is not already loaded in the right mode.
[[nodiscard]] std::unique_ptr<DirtyTracker> make_tracker(Technique t,
                                                         guest::GuestKernel& kernel,
                                                         guest::Process& proc);

}  // namespace ooh::lib
