#include "workloads/phoenix.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

namespace ooh::wl {
namespace {

/// Pre-fault an input region (the mmap'd datafile, resident after load).
void prefault(guest::Process& proc, Gva base, u64 bytes) {
  proc.touch_range_write(base, bytes);
}

}  // namespace

// ---- Histogram ----------------------------------------------------------------

void Histogram::setup(guest::Process& proc) {
  data_ = proc.mmap(data_bytes_, data_backed_);
  bins_ = proc.mmap(3 * 256 * 8, data_backed_);  // R/G/B x 256 counters
  if (data_backed_) {
    // A real synthetic image: deterministic RGB byte triples.
    std::vector<u8> page(kPageSize);
    Rng fill(0x1457);
    for (u64 off = 0; off < data_bytes_; off += kPageSize) {
      for (u64 i = 0; i < kPageSize; ++i) page[i] = static_cast<u8>(fill.next());
      proc.write_bytes(data_ + off, page);
    }
  } else {
    prefault(proc, data_, data_bytes_);
  }
}

void Histogram::run(guest::Process& proc) {
  if (data_backed_) {
    // The genuine algorithm: read every pixel byte, bump its channel bin.
    std::vector<u8> page(kPageSize);
    for (u64 off = 0; off < data_bytes_; off += kPageSize) {
      proc.read_bytes(data_ + off, page);
      for (u64 i = 0; i + 2 < kPageSize; i += 3) {
        for (unsigned c = 0; c < 3; ++c) ++bins_host_[c * 256 + page[i + c]];
      }
    }
    for (u64 b = 0; b < bins_host_.size(); ++b) {
      proc.write_u64(bins_ + b * 8, bins_host_[b]);
    }
    return;
  }
  // Metadata mode: each page of pixels bumps a handful of bins.
  for (u64 off = 0; off < data_bytes_; off += kPageSize) {
    proc.touch_read(data_ + off);
    for (int i = 0; i < 12; ++i) {  // sampled pixel values from this page
      const u64 bin = rng_.below(3 * 256);
      proc.write_u64(bins_ + bin * 8, off + i);
    }
  }
}

// ---- Kmeans --------------------------------------------------------------------

u64 Kmeans::footprint_bytes() const noexcept {
  return points_ * dims_ * 4 + clusters_ * dims_ * 4 + points_ * 8;
}

u32 Kmeans::point_value(u64 p, u64 d) noexcept {
  // Clustered synthetic data: point p belongs "naturally" to group p%8,
  // with deterministic jitter.
  const u64 g = p % 8;
  return static_cast<u32>(g * 1000 + ((p * 2654435761u + d * 40503u) & 0x7F));
}

void Kmeans::setup(guest::Process& proc) {
  points_base_ = proc.mmap(points_ * dims_ * 4, data_backed_);
  centroids_ = proc.mmap(std::max<u64>(clusters_ * dims_ * 4, kPageSize), data_backed_);
  assign_ = proc.mmap(points_ * 8, data_backed_);
  if (data_backed_) {
    std::vector<u8> row(dims_ * 4);
    for (u64 p = 0; p < points_; ++p) {
      for (u64 d = 0; d < dims_; ++d) {
        const u32 v = point_value(p, d);
        std::memcpy(row.data() + d * 4, &v, 4);
      }
      proc.write_bytes(points_base_ + p * dims_ * 4, row);
    }
  } else {
    prefault(proc, points_base_, points_ * dims_ * 4);
  }
}

u64 Kmeans::assignment_of(guest::Process& proc, u64 p) {
  return proc.read_u64(assign_ + p * 8);
}

void Kmeans::run(guest::Process& proc) {
  const u64 point_bytes = points_ * dims_ * 4;
  const u64 centroid_bytes = clusters_ * dims_ * 4;

  if (data_backed_) {
    // Genuine Lloyd iterations through guest memory. Centroids start at the
    // first `clusters_` points.
    std::vector<double> centroids(clusters_ * dims_);
    for (u64 c = 0; c < clusters_; ++c) {
      for (u64 d = 0; d < dims_; ++d) centroids[c * dims_ + d] = point_value(c, d);
    }
    std::vector<u8> row(dims_ * 4);
    std::vector<double> sums(clusters_ * dims_);
    std::vector<u64> counts(clusters_);
    for (unsigned it = 0; it < iters_; ++it) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), u64{0});
      double inertia = 0.0;
      for (u64 p = 0; p < points_; ++p) {
        proc.read_bytes(points_base_ + p * dims_ * 4, row);
        u64 best = 0;
        double best_d2 = 1e300;
        for (u64 c = 0; c < clusters_; ++c) {
          double d2 = 0.0;
          for (u64 d = 0; d < dims_; ++d) {
            u32 v = 0;
            std::memcpy(&v, row.data() + d * 4, 4);
            const double diff = static_cast<double>(v) - centroids[c * dims_ + d];
            d2 += diff * diff;
          }
          if (d2 < best_d2) {
            best_d2 = d2;
            best = c;
          }
        }
        proc.write_u64(assign_ + p * 8, best);
        inertia += best_d2;
        ++counts[best];
        for (u64 d = 0; d < dims_; ++d) {
          u32 v = 0;
          std::memcpy(&v, row.data() + d * 4, 4);
          sums[best * dims_ + d] += v;
        }
      }
      inertia_.push_back(inertia);
      for (u64 c = 0; c < clusters_; ++c) {
        if (counts[c] == 0) continue;
        for (u64 d = 0; d < dims_; ++d) {
          centroids[c * dims_ + d] = sums[c * dims_ + d] / static_cast<double>(counts[c]);
          proc.write_u64(centroids_ + ((c * dims_ + d) * 8) % centroid_bytes,
                         static_cast<u64>(centroids[c * dims_ + d]));
        }
      }
    }
    return;
  }

  for (unsigned it = 0; it < iters_; ++it) {
    // Assignment pass: read all points, write each point's cluster id.
    proc.touch_range_read(points_base_, point_bytes);
    for (u64 p = 0; p < points_; ++p) {
      proc.write_u64(assign_ + p * 8, rng_.below(clusters_));
    }
    // Update pass: recompute every centroid (word-granular stores; the
    // region is not data-backed, so the batched touches are the same
    // access stream as the write_u64 loop).
    proc.touch_range_write(centroids_, centroid_bytes, /*stride=*/8);
  }
}

// ---- MatrixMultiply -------------------------------------------------------------

u32 MatrixMultiply::a_value(u64 row, u64 col) noexcept {
  return static_cast<u32>((row * 2654435761u + col * 40503u) & 0xFF);
}

u32 MatrixMultiply::b_value(u64 row, u64 col) noexcept {
  return static_cast<u32>((row * 40503u + col * 2654435761u) & 0xFF);
}

void MatrixMultiply::setup(guest::Process& proc) {
  const u64 bytes = n_ * n_ * 4;
  a_ = proc.mmap(bytes, data_backed_);
  b_ = proc.mmap(bytes, data_backed_);
  c_ = proc.mmap(bytes, data_backed_);
  if (data_backed_) {
    std::vector<u8> row_bytes(n_ * 4);
    for (u64 r = 0; r < n_; ++r) {
      for (u64 col = 0; col < n_; ++col) {
        const u32 av = a_value(r, col);
        const u32 bv = b_value(r, col);
        std::memcpy(row_bytes.data() + col * 4, &av, 4);
        proc.write_bytes(a_ + (r * n_ + col) * 4, std::span<const u8>(row_bytes.data() + col * 4, 4));
        std::memcpy(row_bytes.data() + col * 4, &bv, 4);
        proc.write_bytes(b_ + (r * n_ + col) * 4, std::span<const u8>(row_bytes.data() + col * 4, 4));
      }
    }
  } else {
    prefault(proc, a_, bytes);
    prefault(proc, b_, bytes);
  }
}

u32 MatrixMultiply::element(guest::Process& proc, u64 row, u64 col) const {
  std::vector<u8> buf(4);
  proc.read_bytes(c_ + (row * n_ + col) * 4, buf);
  u32 v = 0;
  std::memcpy(&v, buf.data(), 4);
  return v;
}

void MatrixMultiply::run(guest::Process& proc) {
  const u64 bytes = n_ * n_ * 4;
  if (data_backed_) {
    // The genuine product, streamed through guest memory row by row.
    std::vector<u8> a_row(n_ * 4), b_row(n_ * 4), c_row(n_ * 4);
    std::vector<u64> acc(n_);
    for (u64 r = 0; r < n_; ++r) {
      proc.read_bytes(a_ + r * n_ * 4, a_row);
      std::fill(acc.begin(), acc.end(), 0);
      for (u64 kk = 0; kk < n_; ++kk) {
        u32 av = 0;
        std::memcpy(&av, a_row.data() + kk * 4, 4);
        proc.read_bytes(b_ + kk * n_ * 4, b_row);
        for (u64 col = 0; col < n_; ++col) {
          u32 bv = 0;
          std::memcpy(&bv, b_row.data() + col * 4, 4);
          acc[col] += static_cast<u64>(av) * bv;
        }
      }
      for (u64 col = 0; col < n_; ++col) {
        const u32 truncated = static_cast<u32>(acc[col]);
        std::memcpy(c_row.data() + col * 4, &truncated, 4);
      }
      proc.write_bytes(c_ + r * n_ * 4, c_row);
    }
    return;
  }
  // Metadata mode: for each output page, stream the contributing A row
  // pages and B column pages, then store the products.
  for (u64 c_off = 0; c_off < bytes; c_off += kPageSize) {
    proc.touch_read(a_ + (c_off % bytes));
    proc.touch_read(b_ + ((c_off * 7) % bytes));
    proc.touch_range_write(c_ + c_off, kPageSize, /*stride=*/8);
  }
}

// ---- Pca ------------------------------------------------------------------------

u64 Pca::footprint_bytes() const noexcept {
  return rows_ * cols_ * 4 + cols_ * 8 + sample_ * sample_ * 4;
}

void Pca::setup(guest::Process& proc) {
  matrix_ = proc.mmap(rows_ * cols_ * 4);  // int32 samples, as Phoenix's pca
  means_ = proc.mmap(std::max<u64>(cols_ * 8, kPageSize));
  cov_ = proc.mmap(std::max<u64>(sample_ * sample_ * 4, kPageSize));
  prefault(proc, matrix_, rows_ * cols_ * 4);
}

void Pca::run(guest::Process& proc) {
  const u64 matrix_bytes = rows_ * cols_ * 4;
  // Pass 1: column means (read everything, write the mean vector).
  proc.touch_range_read(matrix_, matrix_bytes);
  proc.touch_range_write(means_, cols_ * 8, /*stride=*/8);
  // Pass 2: sampled covariance block (re-read rows, fill the cov matrix).
  proc.touch_range_read(matrix_, matrix_bytes);
  proc.touch_range_write(cov_, sample_ * sample_ * 4, /*stride=*/8);
}

// ---- StringMatch ----------------------------------------------------------------

void StringMatch::setup(guest::Process& proc) {
  data_ = proc.mmap(data_bytes_);
  matches_ = proc.mmap(kMiB);
  prefault(proc, data_, data_bytes_);
}

void StringMatch::run(guest::Process& proc) {
  for (u64 off = 0; off < data_bytes_; off += kPageSize) {
    proc.touch_read(data_ + off);
    // Each chunk hashes its words into a temporary key buffer (garbage
    // under Boehm) and records the occasional hit.
    const Gva tmp = alloc_temp(proc, 0, 64);
    proc.write_u64(tmp + 16, off);
    if (rng_.below(16) == 0) {
      proc.write_u64(matches_ + (match_cursor_ % kMiB), off);
      match_cursor_ += 8;
    }
  }
}

// ---- WordCount ------------------------------------------------------------------

std::vector<u8> WordCount::synth_text(u64 bytes) {
  // Deterministic lowercase words separated by single spaces.
  std::vector<u8> text(bytes);
  Rng gen(0xB00C);
  u64 i = 0;
  while (i < bytes) {
    const u64 len = 2 + gen.below(9);
    for (u64 c = 0; c < len && i < bytes; ++c) {
      text[i++] = static_cast<u8>('a' + gen.below(26));
    }
    if (i < bytes) text[i++] = ' ';
  }
  return text;
}

void WordCount::setup(guest::Process& proc) {
  data_ = proc.mmap(data_bytes_, data_backed_);
  table_ = proc.mmap(table_bytes_, data_backed_);
  if (data_backed_) {
    const std::vector<u8> text = synth_text(data_bytes_);
    proc.write_bytes(data_, text);
  } else {
    prefault(proc, data_, data_bytes_);
  }
}

void WordCount::run(guest::Process& proc) {
  if (data_backed_) {
    // The genuine tokeniser: read real bytes, count words, bump each word's
    // hash slot in the guest table.
    std::vector<u8> page(kPageSize);
    u64 hash = 1469598103934665603ULL;
    bool in_word = false;
    for (u64 off = 0; off < data_bytes_; off += kPageSize) {
      proc.read_bytes(data_ + off, page);
      for (const u8 ch : page) {
        if (ch == ' ' || ch == 0) {
          if (in_word) {
            ++total_words_;
            const u64 slot = (hash % (table_bytes_ / 8)) * 8;
            proc.write_u64(table_ + slot, proc.read_u64(table_ + slot) + 1);
            hash = 1469598103934665603ULL;
            in_word = false;
          }
        } else {
          hash = (hash ^ ch) * 1099511628211ULL;  // FNV-1a
          in_word = true;
        }
      }
    }
    if (in_word) ++total_words_;
    return;
  }
  for (u64 off = 0; off < data_bytes_; off += kPageSize) {
    proc.touch_read(data_ + off);
    // ~32 words per page, each hashed into the table (scattered writes).
    for (int w = 0; w < 32; ++w) {
      const u64 slot = rng_.below(table_bytes_ / 8) * 8;
      proc.write_u64(table_ + slot, off + w);
    }
    if (gc() != nullptr) {
      const Gva tmp = alloc_temp(proc, 0, 48);  // per-chunk emit list
      proc.write_u64(tmp + 16, off);
    }
  }
}

}  // namespace ooh::wl
