file(REMOVE_RECURSE
  "CMakeFiles/ooh_criu.dir/checkpoint.cpp.o"
  "CMakeFiles/ooh_criu.dir/checkpoint.cpp.o.d"
  "libooh_criu.a"
  "libooh_criu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_criu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
