#include "trackers/criu/checkpoint.hpp"

#include <stdexcept>

#include "base/clock.hpp"

namespace ooh::criu {

void Checkpointer::dump_pages(guest::Process& proc, const std::vector<Gva>& pages,
                              CheckpointImage& image) {
  sim::ExecContext& m = kernel_.ctx();
  sim::GuestPageTable& pt = kernel_.page_table(proc);
  for (const Gva gva : pages) {
    const sim::Pte* pte = pt.pte(gva);
    if (pte == nullptr || !pte->present) continue;  // unmapped since logging
    std::vector<u8> content;
    const guest::Vma* vma = proc.vma_of(gva);
    if (vma != nullptr && vma->data_backed) {
      Hpa hpa = 0;
      if (kernel_.vm().ept().translate(pte->gpa_page, hpa)) {
        if (const u8* data = m.pmem.frame_data_if_present(hpa); data != nullptr) {
          content.assign(data, data + kPageSize);
        }
      }
    }
    image.pages[page_floor(gva)] = std::move(content);  // empty = all-zero page
    ++image.dump_ops;
    m.count(Event::kDiskPageWrite);
    m.charge_us(m.cost.disk_write_page_us);
  }
}

CheckpointImage Checkpointer::full_checkpoint(guest::Process& proc) {
  CheckpointImage image;
  for (const guest::Vma& vma : proc.vmas()) {
    image.vmas.push_back({vma.start, vma.bytes(), vma.data_backed});
  }
  std::vector<Gva> pages;
  kernel_.page_table(proc).for_each_present(
      [&](Gva gva, sim::Pte&) { pages.push_back(gva); });
  dump_pages(proc, pages, image);
  return image;
}

CheckpointResult Checkpointer::checkpoint_during(guest::Process& proc,
                                                 const lib::WorkloadFn& workload,
                                                 const CheckpointOptions& opts) {
  sim::ExecContext& m = kernel_.ctx();
  CheckpointResult res;
  for (const guest::Vma& vma : proc.vmas()) {
    res.image.vmas.push_back({vma.start, vma.bytes(), vma.data_backed});
  }

  auto tracker = lib::make_tracker(technique_, kernel_, proc);

  lib::RunOptions ropts;
  ropts.collect_period = opts.precopy_period;
  ropts.final_collect = false;  // the final dump below is the MD phase
  ropts.on_collected = [&](const std::vector<Gva>& pages) {
    // Pre-copy round: dump this interval's dirty pages while running.
    VirtualClock::Scope s(m.clock, res.phases.precopy);
    dump_pages(proc, pages, res.image);
  };

  if (opts.initial_full_copy) {
    // CRIU's first pre-dump: copy everything present before the run. Pages
    // the workload then modifies are stale in the image until the dirty
    // dumps below refresh them -- image correctness therefore *depends* on
    // the tracker's completeness, as it does in real incremental CRIU.
    VirtualClock::Scope s(m.clock, res.phases.precopy);
    std::vector<Gva> all;
    kernel_.page_table(proc).for_each_present(
        [&](Gva gva, sim::Pte&) { all.push_back(gva); });
    res.full_copy_pages = all.size();
    dump_pages(proc, all, res.image);
  }

  res.run = lib::run_tracked(kernel_, proc, workload, tracker.get(), ropts);

  // Final checkpoint: the process is paused (it already finished its run).
  std::vector<Gva> dirty;
  if (technique_ == lib::Technique::kProc) {
    // /proc fuses collection into the write phase: CRIU walks the pagemap
    // and dumps pages as it finds them, so MW carries the scan cost (Fig 7).
    VirtualClock::Scope mw(m.clock, res.phases.mw);
    dirty = tracker->collect();
    dump_pages(proc, dirty, res.image);
  } else {
    {
      VirtualClock::Scope md(m.clock, res.phases.md);
      dirty = tracker->collect();
    }
    VirtualClock::Scope mw(m.clock, res.phases.mw);
    dump_pages(proc, dirty, res.image);
  }
  res.final_dirty_pages = dirty.size();
  res.phases.init = tracker->phases().init;
  tracker->shutdown();
  return res;
}

IncrementalSession::IncrementalSession(guest::GuestKernel& kernel,
                                       lib::Technique technique, guest::Process& proc)
    : kernel_(kernel), proc_(proc), checkpointer_(kernel, technique) {
  tracker_ = lib::make_tracker(technique, kernel_, proc_);
  tracker_->init();
  tracker_->begin_interval();
  for (const guest::Vma& vma : proc_.vmas()) {
    image_.vmas.push_back({vma.start, vma.bytes(), vma.data_backed});
  }
  std::vector<Gva> all;
  kernel_.page_table(proc_).for_each_present(
      [&](Gva gva, sim::Pte&) { all.push_back(gva); });
  full_copy_pages_ = all.size();
  checkpointer_.dump_pages(proc_, all, image_);
}

IncrementalSession::~IncrementalSession() {
  tracker_->shutdown();
}

IncrementalSession::StepResult IncrementalSession::step(const lib::WorkloadFn& slice) {
  sim::ExecContext& m = kernel_.ctx();
  StepResult res;
  guest::Scheduler& sched = kernel_.scheduler();

  const VirtDuration run_start = m.clock.now();
  sched.enter_process(proc_.pid());
  slice(proc_);
  sched.exit_process(proc_.pid());
  res.run_time = m.clock.now() - run_start;

  const VirtDuration dump_start = m.clock.now();
  // The slice may have mapped new VMAs; refresh the layout record.
  image_.vmas.clear();
  for (const guest::Vma& vma : proc_.vmas()) {
    image_.vmas.push_back({vma.start, vma.bytes(), vma.data_backed});
  }
  const std::vector<Gva> dirty = tracker_->collect();
  tracker_->begin_interval();
  checkpointer_.dump_pages(proc_, dirty, image_);
  res.dump_time = m.clock.now() - dump_start;
  res.dirty_pages = dirty.size();
  ++steps_;
  return res;
}

void restore(guest::Process& proc, const CheckpointImage& image) {
  if (!proc.vmas().empty()) {
    throw std::invalid_argument("restore target process must be fresh");
  }
  for (const CheckpointImage::VmaRecord& rec : image.vmas) {
    const Gva got = proc.mmap(rec.bytes, rec.data_backed);
    if (got != rec.start) {
      throw std::runtime_error("restore could not reproduce the VMA layout");
    }
  }
  for (const auto& [gva, content] : image.pages) {
    if (content.empty()) {
      // All-zero (or metadata-only) page: touch so it exists post-restore.
      proc.touch_write(gva);
    } else {
      proc.write_bytes(gva, content);
    }
  }
}

}  // namespace ooh::criu
