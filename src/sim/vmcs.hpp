// Virtual Machine Control Structure.
//
// Models just the fields the OoH designs touch, including the paper's EPML
// hardware extension fields (GUEST_PML_*). A VMCS can be "shadow": linked
// from an ordinary VMCS so that guest-mode vmread/vmwrite reach it without
// a VM-exit (Intel VMCS shadowing, which EPML hijacks).
#pragma once

#include <array>
#include <cstddef>

#include "base/types.hpp"

namespace ooh::sim {

enum class VmcsField : std::size_t {
  kPmlAddress = 0,     ///< HPA of the hypervisor-level 4KiB PML buffer.
  kPmlIndex,           ///< next hypervisor-level log slot; counts down from 511.
  kGuestPmlAddress,    ///< EPML: HPA of the guest-level PML buffer (stored
                       ///< post-EPT-translation; the guest vmwrites a GPA).
  kGuestPmlIndex,      ///< EPML: next guest-level log slot; counts down.
  kGuestPmlEnable,     ///< EPML: nonzero = log GVAs to the guest-level buffer.
  kEptPointer,         ///< opaque id of the VM's EPT root.
  kSecondaryControls,  ///< bitmask of SecondaryControl.
  kVmcsLinkPointer,    ///< opaque id of the linked shadow VMCS (0 = none).
  kCount
};

/// Bits of VmcsField::kSecondaryControls.
enum SecondaryControl : u64 {
  kEnablePml = u64{1} << 0,
  kEnableVmcsShadowing = u64{1} << 1,
  /// EPML extension: the page-walk circuit also logs GVAs to the guest-level
  /// buffer (gated per-process by kGuestPmlEnable, which the guest toggles).
  kEnableGuestPml = u64{1} << 2,
  /// Read-logging extension (Bitchebe et al., related work): accessed-flag
  /// transitions also log the GPA, enabling working-set-size estimation.
  kEnablePmlReadLog = u64{1} << 3,
};

/// Bitmask of VMCS fields, used for the shadowing read/write permission
/// bitmaps (real VMCS shadowing controls per-field guest access the same
/// way, via the VMREAD/VMWRITE bitmaps).
class VmcsFieldSet {
 public:
  void add(VmcsField f) noexcept { bits_ |= bit(f); }
  void remove(VmcsField f) noexcept { bits_ &= ~bit(f); }
  [[nodiscard]] bool contains(VmcsField f) const noexcept { return (bits_ & bit(f)) != 0; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

 private:
  static constexpr u64 bit(VmcsField f) noexcept {
    return u64{1} << static_cast<std::size_t>(f);
  }
  u64 bits_ = 0;
};

class Vmcs {
 public:
  explicit Vmcs(bool shadow = false) : shadow_(shadow) {}

  [[nodiscard]] u64 read(VmcsField f) const noexcept {
    return fields_[static_cast<std::size_t>(f)];
  }
  void write(VmcsField f, u64 v) noexcept { fields_[static_cast<std::size_t>(f)] = v; }

  [[nodiscard]] bool is_shadow() const noexcept { return shadow_; }
  [[nodiscard]] bool control(SecondaryControl bit) const noexcept {
    return (read(VmcsField::kSecondaryControls) & bit) != 0;
  }
  void set_control(SecondaryControl bit, bool on) noexcept {
    u64 c = read(VmcsField::kSecondaryControls);
    c = on ? (c | bit) : (c & ~static_cast<u64>(bit));
    write(VmcsField::kSecondaryControls, c);
  }

 private:
  std::array<u64, static_cast<std::size_t>(VmcsField::kCount)> fields_{};
  bool shadow_;
};

}  // namespace ooh::sim
