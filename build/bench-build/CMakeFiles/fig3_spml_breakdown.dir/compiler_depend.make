# Empty compiler generated dependencies file for fig3_spml_breakdown.
# This may be replaced when dependencies are built.
