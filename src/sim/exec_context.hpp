// Per-vCPU execution context: the mutable state one virtual CPU timeline
// owns exclusively — its virtual clock, event counters and TLB — plus
// references to the machine-wide read-only cost model and the (thread-safe)
// frame allocator.
//
// The paper's scalability argument (Figs. 10-11) is that PML state is
// per-vCPU with no cross-VM coupling; this type is that argument in code.
// Because no two contexts share mutable state, independent tenant-VM
// timelines may run on different host threads and still produce bit-
// identical virtual-time results to a serial run.
#pragma once

#include "base/clock.hpp"
#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "sim/fault/injector.hpp"
#include "sim/phys_mem.hpp"
#include "sim/tlb.hpp"

namespace ooh::sim {

class ExecContext {
 public:
  ExecContext(u32 id, const CostModel& cost_model, PhysicalMemory& phys)
      : cost(cost_model), pmem(phys), id_(id) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] u32 id() const noexcept { return id_; }

  void charge_us(double us) { clock.advance(usecs(us)); }
  void charge_ns(double ns) { clock.advance(nsecs(ns)); }
  void count(Event e, u64 n = 1) noexcept { counters.add(e, n); }

  // ---- fault injection (tentpole of the robustness PR) ------------------
  // `faults == nullptr` is the production configuration: every hook below
  // collapses to a branch on a null pointer, charges zero virtual time and
  // counts nothing, so faults-disabled runs stay bit-identical to a build
  // without the subsystem.

  /// One arrival at injection point `p`; true when the FaultPlan fires.
  [[nodiscard]] bool fault_fire(fault::FaultPoint p) noexcept {
    if (faults == nullptr || !faults->fire(p)) return false;
    counters.add(Event::kFaultInjected);
    return true;
  }

  /// Self-IPI delivery gate (see FaultInjector::gate_self_ipi). True means
  /// deliver the IPI; false means it was dropped by an injected fault.
  [[nodiscard]] bool fault_gate_self_ipi() noexcept {
    if (faults == nullptr) return true;
    const auto gate = faults->gate_self_ipi();
    if (gate.fired) counters.add(Event::kFaultInjected);
    if (!gate.deliver) counters.add(Event::kSelfIpiSuppressed);
    return gate.deliver;
  }

  /// Run the post-fault audit hook (CoherenceChecker::audit_vm when the
  /// TestBed wired one). Call sites invoke this once machine state has
  /// settled after an injected fault, so every fault is followed by a full
  /// invariant audit at the blast site.
  void fault_audit() {
    if (faults != nullptr) faults->run_post_fault_hook();
  }

  VirtualClock clock;
  EventCounters counters;
  Tlb tlb;
  const CostModel& cost;
  PhysicalMemory& pmem;
  fault::FaultInjector* faults = nullptr;  ///< owned by the TestBed; null = no faults.

 private:
  u32 id_;
};

}  // namespace ooh::sim
