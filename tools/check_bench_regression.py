#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Compares a fresh run against the committed baseline (captured on the CI
runner class) and fails when any benchmark regressed by more than
--max-ratio (default 2x — generous enough to absorb runner noise, tight
enough to catch a hot path falling off a cliff, e.g. an accidental
O(capacity) TLB flush or a per-access heap allocation).

Two kinds of input share the gate:
  * bench/gbench_sim_primitives microbench JSON (baseline
    bench/BENCH_PR9.json) — compared on cpu_time, the right metric for a
    single-threaded primitive.
  * tools/run_e2e_bench.py end-to-end figure JSON (baseline
    bench/BENCH_E2E_PR9.json) — rows named E2E_* are compared on
    real_time, because whole-figure wall-clock (including the
    epoch-parallel fan-out, where cpu_time exceeds wall time by design)
    is the user-facing quantity.

Independently of timing, every benchmark that exports an `allocs_per_op`
counter claims an allocation-free steady state; any non-trivial value fails
the gate regardless of how fast the run was, because host timing noise can
mask an allocation regression but the counter cannot.

Usage:
  check_bench_regression.py --baseline bench/BENCH_PR9.json --current out.json

Exit status: 0 clean, 1 regression(s), 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_benchmarks(path: Path) -> dict[str, dict]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read {path}: {err}", file=sys.stderr)
        raise SystemExit(2) from err
    out: dict[str, dict] = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    if not out:
        print(f"check_bench_regression: no benchmarks in {path}", file=sys.stderr)
        raise SystemExit(2)
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON (bench/BENCH_PR9.json "
                             "or bench/BENCH_E2E_PR9.json)")
    parser.add_argument("--current", type=Path, required=True,
                        help="JSON from the run under test")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline cpu_time exceeds this")
    parser.add_argument("--max-allocs", type=float, default=0.01,
                        help="fail when allocs_per_op exceeds this")
    args = parser.parse_args(argv)

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    failures: list[str] = []
    checked = 0
    for name, b in sorted(cur.items()):
        allocs = b.get("allocs_per_op")
        if allocs is not None and allocs > args.max_allocs:
            failures.append(
                f"{name}: allocs_per_op={allocs:.4f} (steady state must not "
                f"allocate; limit {args.max_allocs})")
        if name not in base:
            print(f"  note: {name} has no baseline entry (new benchmark)")
            continue
        # E2E_* rows track whole-figure wall-clock: real_time is the
        # quantity the user waits for, and under the epoch-parallel fan-out
        # cpu_time legitimately exceeds it.
        metric = "real_time" if name.startswith("E2E_") else "cpu_time"
        base_ns = base[name][metric]
        cur_ns = b[metric]
        if base[name].get("time_unit") != b.get("time_unit"):
            failures.append(f"{name}: time_unit changed "
                            f"({base[name].get('time_unit')} -> {b.get('time_unit')})")
            continue
        checked += 1
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        marker = " <-- REGRESSION" if ratio > args.max_ratio else ""
        print(f"  {name}: {base_ns:.2f} -> {cur_ns:.2f} "
              f"{b.get('time_unit', 'ns')} ({ratio:.2f}x){marker}")
        if ratio > args.max_ratio:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(limit {args.max_ratio}x)")

    missing = sorted(set(base) - set(cur))
    for name in missing:
        failures.append(f"{name}: present in baseline but missing from the run "
                        "(deleted benchmarks must also leave the baseline)")

    if failures:
        print(f"\ncheck_bench_regression: {len(failures)} failure(s):")
        for f in failures:
            print("  " + f)
        return 1
    print(f"\ncheck_bench_regression: clean ({checked} benchmarks vs baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
