// Figure 11: Tracked (Phoenix-histogram under Boehm) performance as the
// number of tenant VMs grows from 1 to 5.
//
// Paper's finding: the per-VM impact of each technique on the Tracked
// matches the single-VM result and stays constant as VMs are added. As in
// fig10, the tenant timelines run on a worker pool (--threads N, default
// auto); per-VM virtual time is identical to a serial run by construction.
#include <algorithm>

#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 11", "Per-VM Tracked time with 1..5 tenant VMs");
  const unsigned threads =
      args.threads != 0 ? args.threads : std::max(2u, lib::TestBed::default_workers());
  std::printf("tenant timelines on up to %u worker threads (--threads N to change)\n",
              threads);

  TextTable t({"VMs + technique", "min app (ms)", "max app (ms)", "spread (%)", "wall (ms)"});
  for (unsigned vms = 1; vms <= 5; ++vms) {
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml,
          lib::Technique::kWp, lib::Technique::kSeg}) {
      const bench::FleetResult fleet =
          bench::run_boehm_fleet(vms, args.scale, tech, threads, args.gran);
      double min_t = 1e300, max_t = 0.0;
      for (const bench::BoehmRun& r : fleet.runs) {
        min_t = std::min(min_t, r.app_time_us);
        max_t = std::max(max_t, r.app_time_us);
      }
      const double spread = max_t > 0.0 ? (max_t - min_t) / max_t * 100.0 : 0.0;
      t.add_row(std::to_string(vms) + " " + std::string(lib::technique_name(tech)),
                {min_t / 1e3, max_t / 1e3, spread, fleet.wall_ms}, 2);
    }
  }
  t.print(std::cout);

  const bench::FleetResult serial =
      bench::run_boehm_fleet(5, args.scale, lib::Technique::kProc, 1);
  const bench::FleetResult parallel =
      bench::run_boehm_fleet(5, args.scale, lib::Technique::kProc, threads);
  std::printf("\n5-VM /proc fleet wall clock: serial %.1f ms, %u workers %.1f ms "
              "(speedup %.2fx)\n",
              serial.wall_ms, threads, parallel.wall_ms,
              parallel.wall_ms > 0.0 ? serial.wall_ms / parallel.wall_ms : 0.0);
  std::printf("Shape check: per-VM Tracked time is flat in the VM count.\n");

  // vCPU axis, Tracked side: the writer processes ARE the tracked
  // workloads here — their per-vCPU virtual time must stay flat as vCPUs
  // (and userspace drainers) are added, because dirty-ring pops charge the
  // guest nothing (--vcpus N to widen the sweep).
  std::printf("\nSMP guest: per-vCPU writers with concurrent userspace drain\n");
  const u64 smp_pages = 1024;  // fits the 1536-entry TLB: steady-state passes are lock-free
  const int smp_passes = args.full ? 256 : 48;
  TextTable s({"vCPUs", "virt/vCPU (ms)", "spread (%)", "drained", "harvested",
               "serial wall (ms)", "conc wall (ms)", "speedup"});
  for (const unsigned v : bench::vcpu_sweep(args.vcpus)) {
    const bench::SmpDrainResult ser = bench::run_smp_drain(v, smp_pages, smp_passes, false);
    const bench::SmpDrainResult conc = bench::run_smp_drain(v, smp_pages, smp_passes, true);
    s.add_row(std::to_string(v),
              {conc.max_vcpu_ms, conc.spread_pct, static_cast<double>(conc.drained),
               static_cast<double>(conc.harvested), ser.wall_ms, conc.wall_ms,
               conc.wall_ms > 0.0 ? ser.wall_ms / conc.wall_ms : 0.0},
              2);
  }
  s.print(std::cout);
  std::printf("Shape check: per-vCPU Tracked virtual time is flat in the vCPU count —\n"
              "the concurrent drain stays off the guest's critical path. Wall-clock\n"
              "columns depend on host cores (%u here).\n",
              lib::TestBed::default_workers());

  // EPT granularity axis, Tracked side: what the guest pays for each
  // backing mode. Huge backing makes the prefault walks cheaper; eager
  // splitting adds only a one-off session-start cost on top of plain 2M,
  // while plain-2M logging inflates the harvested superset.
  std::printf("\nEPT backing granularity: Tracked cost per mode\n");
  TextTable g({"gran", "virt/vCPU (ms)", "harvested", "wall (ms)"});
  for (const bench::GranMode m :
       {bench::GranMode::k4K, bench::GranMode::k2M,
        bench::GranMode::k2MEagerSplit}) {
    const bench::SmpDrainResult r =
        bench::run_smp_drain(2, smp_pages, smp_passes, false, m);
    g.add_row(bench::gran_mode_name(m),
              {r.max_vcpu_ms, static_cast<double>(r.harvested), r.wall_ms}, 2);
  }
  g.print(std::cout);
  std::printf("Shape check: 2M+split matches 4K harvest precision; its only\n"
              "virtual-time cost over plain 2M is the one-off enable-time split.\n");

  // Adaptive axis (opt-in, keeps the stock figure byte-identical): the
  // Tracked-side view — what the phase-changing guest pays under a static
  // backend pinned wrong for half the run vs the adaptive control plane.
  if (args.adaptive) bench::print_adaptive_section();
  return 0;
}
