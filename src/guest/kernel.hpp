// The guest operating system kernel (Linux-like).
//
// Owns processes, the per-process page tables' fault policy (demand paging,
// soft-dirty, userfaultfd dispatch), the guest-physical frame allocator, the
// per-vCPU schedulers, and the interrupt table entry for EPML's posted
// self-IPI (the paper's "Linux Core" change, §IV-E).
//
// SMP: the kernel owns one Mmu and one Scheduler per vCPU and places
// processes round-robin across vCPUs at creation (migrate_process moves
// them later). Every access routes through the owning vCPU's MMU, charges
// that vCPU's timeline, and ticks that vCPU's scheduler — with one vCPU this
// degenerates to exactly the old single-timeline pipeline. Page-table
// updates that *reduce* permissions or tear down mappings go through the
// mm_cpumask shootdown helpers (tlb_invalidate_page / tlb_flush_pid): the
// owning vCPU invalidates locally and every other vCPU the process ever ran
// on gets an IPI-modelled remote invalidation (Event::kTlbShootdownIpi,
// CostModel::tlb_shootdown_us per remote). A process that never migrated
// has a singleton mask, so N=1 pays no shootdown — bit-identical to the
// single-vCPU tree. SHOOT-1 (docs/invariants.md) pins the mask discipline.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"
#include "guest/process.hpp"
#include "guest/scheduler.hpp"
#include "hypervisor/vm.hpp"
#include "sim/exec_context.hpp"
#include "sim/mmu.hpp"
#include "sim/page_table.hpp"

namespace ooh::hv {
class Hypervisor;
}
namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::guest {

class OohModule;
class Uffd;
class ProcFs;
class SwapDaemon;
enum class OohMode { kSpml, kEpml };

/// Raised when a guest access has no VMA or violates permissions for good.
struct GuestSegfault : std::runtime_error {
  explicit GuestSegfault(Gva gva)
      : std::runtime_error("guest segfault"), addr(gva) {}
  Gva addr;
};

class GuestKernel final : public sim::GuestIrqSink {
 public:
  GuestKernel(hv::Hypervisor& hypervisor, hv::Vm& vm);
  ~GuestKernel() override;

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  Process& create_process();
  [[nodiscard]] Process* find(u32 pid) noexcept;

  /// Visit every live process as fn(Process&, sim::GuestPageTable&); the
  /// coherence oracle re-derives TLB entries and GPA ownership through this.
  template <typename Fn>
  void for_each_process(Fn&& fn) {
    for (auto& e : procs_) fn(*e.proc, *e.pt);
  }

  /// The BSP's execution context (vCPU 0's clock, counters, TLB). With one
  /// vCPU this is "the VM's timeline"; SMP code routes via ctx_of().
  [[nodiscard]] sim::ExecContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] hv::Vm& vm() noexcept { return vm_; }
  [[nodiscard]] hv::Hypervisor& hypervisor() noexcept { return hypervisor_; }
  [[nodiscard]] ProcFs& procfs() noexcept { return *procfs_; }
  [[nodiscard]] Uffd& uffd() noexcept { return *uffd_; }

  // ---- SMP topology and routing ---------------------------------------------
  [[nodiscard]] unsigned vcpu_count() const noexcept {
    return static_cast<unsigned>(scheds_.size());
  }
  [[nodiscard]] Scheduler& scheduler(unsigned cpu) noexcept { return *scheds_[cpu]; }
  /// vCPU-0 shorthand kept for single-vCPU call sites and tests.
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheds_[0]; }
  [[nodiscard]] sim::Mmu& mmu(unsigned cpu) noexcept { return *mmus_[cpu]; }
  [[nodiscard]] sim::Mmu& mmu() noexcept { return *mmus_[0]; }

  [[nodiscard]] sim::Vcpu& vcpu_of(const Process& proc) noexcept {
    return vm_.vcpu(proc.cpu());
  }
  [[nodiscard]] sim::ExecContext& ctx_of(const Process& proc) noexcept {
    return vm_.vcpu(proc.cpu()).ctx();
  }
  [[nodiscard]] Scheduler& scheduler_of(const Process& proc) noexcept {
    return *scheds_[proc.cpu()];
  }
  [[nodiscard]] sim::Mmu& mmu_of(const Process& proc) noexcept {
    return *mmus_[proc.cpu()];
  }

  /// Move `proc` to vCPU `cpu`. Like Linux task migration this does NOT
  /// flush anything: the old vCPU stays in the process's mm_cpumask, so
  /// later permission-reducing PT updates shoot it down too.
  void migrate_process(Process& proc, unsigned cpu);

  /// Convenience for every scheduler at once (tenant setup).
  void set_quantum_all(VirtDuration q) noexcept {
    for (auto& s : scheds_) s->set_quantum(q);
  }

  // ---- mm_cpumask TLB shootdown protocol ------------------------------------
  // Invalidate cached translations of `proc` on every vCPU in its cpumask:
  // the owning vCPU locally (exactly the old single-vCPU operation, no
  // extra charge), every *other* masked vCPU via a modelled IPI shootdown
  // (count kTlbShootdownIpi + charge tlb_shootdown_us on the owning vCPU's
  // timeline, per remote). Callers keep charging their own kTlbFlush /
  // flush costs exactly as before, so N=1 virtual time is unchanged.
  //
  // Threaded SMP runs may only take the remote path while the remote vCPU
  // threads are quiescent (serial phases); pinned processes have singleton
  // masks, so steady-state concurrent execution never mutates a foreign TLB.
  void tlb_invalidate_page(Process& proc, Gva gva_page);
  void tlb_flush_pid(Process& proc);

  /// Load/unload the OoH kernel module (UIO driver's kernel half).
  OohModule& load_ooh_module(OohMode mode);
  void unload_ooh_module();
  [[nodiscard]] OohModule* ooh_module() noexcept { return ooh_module_.get(); }

  /// Core access path: translate (fault + retry as needed), record truth,
  /// give the owning vCPU's scheduler a chance to tick. Returns the HPA.
  Hpa access(Process& proc, Gva gva, bool is_write);

  /// Batched equivalent of n accesses at base, base+stride, ...: accesses a
  /// cached translation can serve run through Mmu::access_run (same charges,
  /// same truth/scheduler side effects per access); any access it cannot
  /// serve falls back to the full access() pipeline, then the run resumes.
  /// Virtual time is bit-identical to the per-access loop this replaces.
  void touch_run(Process& proc, Gva base, u64 stride, u64 n, bool is_write);

  /// Per-process page table (kernel-owned, like mm_struct). O(1): reads the
  /// pointer cached on the process at create_process() time.
  [[nodiscard]] sim::GuestPageTable& page_table(Process& proc);

  // ---- guest-physical memory -----------------------------------------------
  /// Allocate a guest frame, charging faults to `ctx` (the acting vCPU's
  /// timeline). The free list is mutex-guarded: demand faults on different
  /// vCPUs may allocate concurrently.
  [[nodiscard]] Gpa alloc_gpa_frame(sim::ExecContext& ctx);
  [[nodiscard]] Gpa alloc_gpa_frame() { return alloc_gpa_frame(ctx_); }
  void free_gpa_frame(Gpa gpa);
  /// Force an EPT mapping to exist for `gpa` (models a kernel touch on
  /// vCPU `cpu`).
  void ensure_ept_mapped(Gpa gpa, unsigned cpu = 0);

  /// The swap daemon (kernel's own dirty-tracking consumer, paper §I).
  [[nodiscard]] SwapDaemon& swap() noexcept { return *swap_; }

  // ---- OoH-SPP: sub-page write protection (paper §III-D) --------------------
  /// What the guest asks the handler to do after a guard hit.
  enum class SppAction { kUnprotect, kKill };
  using SppHandler = std::function<SppAction(Gva fault_addr)>;

  /// Install a 32-bit write-allow mask (bit i = sub-page i of 128B) for one
  /// page of `proc` (demand-mapping it if needed). Goes through the
  /// kOohSppProtect hypercall; the guest only ever names GPAs.
  void spp_protect(Process& proc, Gva gva_page, u32 write_mask);
  void spp_clear(Process& proc, Gva gva_page);
  [[nodiscard]] u32 spp_mask_of(Process& proc, Gva gva_page);
  void set_spp_handler(Process& proc, SppHandler handler);

  [[nodiscard]] u64 spp_violations() const noexcept { return spp_violations_; }

  // ---- sim::GuestIrqSink -----------------------------------------------------
  void on_guest_pml_full(sim::Vcpu& vcpu) override;

 private:
  friend class ProcFs;
  friend class Uffd;
  friend struct ooh::snapshot::Access;

  void handle_not_present(Process& proc, Gva gva, bool is_write);
  void handle_not_writable(Process& proc, Gva gva);
  void handle_subpage_fault(Process& proc, Gva gva);
  [[nodiscard]] Gpa translate_gva(Process& proc, Gva gva);

  hv::Hypervisor& hypervisor_;
  hv::Vm& vm_;
  sim::ExecContext& ctx_;
  std::vector<std::unique_ptr<sim::Mmu>> mmus_;     ///< one per vCPU.
  std::vector<std::unique_ptr<Scheduler>> scheds_;  ///< one per vCPU.
  std::unique_ptr<ProcFs> procfs_;
  std::unique_ptr<Uffd> uffd_;
  std::unique_ptr<SwapDaemon> swap_;
  std::unique_ptr<OohModule> ooh_module_;
  struct ProcEntry {
    std::unique_ptr<Process> proc;
    std::unique_ptr<sim::GuestPageTable> pt;
  };
  std::vector<ProcEntry> procs_;
  std::unordered_map<u32, SppHandler> spp_handlers_;
  u64 spp_violations_ = 0;
  u32 next_pid_ = 1;
  unsigned next_place_cpu_ = 0;  ///< round-robin placement cursor.
  Gpa next_gpa_frame_ = kPageSize;  // guest frame 0 reserved, like HPA 0
  std::vector<Gpa> gpa_free_list_;
  sync::Mutex gpa_mu_;  ///< guards the frame allocator under SMP demand faults.
};

}  // namespace ooh::guest
