// Ablation: working-set-size estimation via read-logging PML.
//
// Related-work extension (Bitchebe et al.): logging accessed-flag
// transitions lets the hypervisor estimate a VM's working set without guest
// cooperation. Sweeps hot-set sizes and checks the estimate against the
// ground truth.
#include "common.hpp"
#include "base/rng.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation: WSS estimation",
                      "hypervisor-estimated working set vs ground truth");
  const u64 total_pages = args.full ? 131072 : 16384;

  TextTable t({"hot pages (truth)", "estimated", "error (%)", "samples"});
  for (const double hot_frac : {0.01, 0.05, 0.25, 0.5, 1.0}) {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& hv = bed.hypervisor();
    auto& proc = k.create_process();
    const Gva base = proc.mmap(total_pages * kPageSize);
    for (u64 i = 0; i < total_pages; ++i) proc.touch_write(base + i * kPageSize);

    const u64 hot = std::max<u64>(1, static_cast<u64>(hot_frac * total_pages));
    hv.enable_wss_sampling(bed.vm());
    Rng rng(99);
    u64 est_sum = 0;
    const int samples = 5;
    for (int s = 0; s < samples; ++s) {
      // One sampling window: the app touches its hot set (reads + writes).
      for (u64 i = 0; i < hot; ++i) {
        if (rng.below(2) == 0) {
          proc.touch_read(base + i * kPageSize);
        } else {
          proc.touch_write(base + i * kPageSize);
        }
      }
      est_sum += hv.harvest_wss(bed.vm()).size();
    }
    hv.disable_wss_sampling(bed.vm());
    const double est = static_cast<double>(est_sum) / samples;
    t.add_row(std::to_string(hot),
              {est, 100.0 * (est - static_cast<double>(hot)) / static_cast<double>(hot),
               static_cast<double>(samples)},
              1);
  }
  t.print(std::cout);
  std::printf("\nShape check: the estimate tracks the hot-set size across two orders\n"
              "of magnitude, counting read-only pages that dirty-only PML would miss.\n");
  return 0;
}
