#include "base/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ooh {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ooh
