// Workload framework: the paper's benchmark applications re-implemented to
// run against the simulated guest process, preserving their page-granularity
// write patterns (which is what dirty-tracking cost depends on).
//
// Each workload has a setup() phase (allocate VMAs, load synthetic input --
// untracked, like starting the real program) and a run() phase (the tracked
// execution). GC-managed workloads additionally allocate objects through a
// GcHeap when one is attached (the Boehm experiments).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "guest/process.hpp"
#include "ooh/experiment.hpp"

namespace ooh::gc {
class GcHeap;
}

namespace ooh::wl {

enum class ConfigSize { kSmall, kMedium, kLarge };

[[nodiscard]] std::string_view config_name(ConfigSize s) noexcept;

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Approximate memory footprint (Table III "Memory Cons." at scale 1).
  [[nodiscard]] virtual u64 footprint_bytes() const noexcept = 0;

  /// Allocate VMAs and load synthetic input. Not part of the tracked run.
  virtual void setup(guest::Process& proc) = 0;
  /// The tracked execution.
  virtual void run(guest::Process& proc) = 0;

  /// Attach a GC heap: object allocations go through it (Boehm experiments).
  void attach_gc(gc::GcHeap* heap) noexcept { gc_ = heap; }
  [[nodiscard]] gc::GcHeap* gc() const noexcept { return gc_; }

  [[nodiscard]] lib::WorkloadFn runner() {
    return [this](guest::Process& p) { run(p); };
  }

 protected:
  /// Allocate a short-lived intermediate object: via the GC heap when
  /// attached (creating collectable garbage), else a recycled bump arena.
  Gva alloc_temp(guest::Process& proc, unsigned ref_slots, u64 data_bytes);

  gc::GcHeap* gc_ = nullptr;
  Rng rng_{0xC0FFEE};

 private:
  Gva temp_arena_ = 0;
  u64 temp_arena_bytes_ = 0;
  u64 temp_bump_ = 0;
};

}  // namespace ooh::wl
