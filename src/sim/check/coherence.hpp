// Machine-state coherence oracle.
//
// PR 2 routed every dirty-producing event through the page-track notifier
// chain, which means TLB entries, EPT flags, guest PTEs, PML/EPML buffers
// and the dirty-log consumers are now mutated from three different layers.
// That is exactly the translation-coherence hazard of Yan et al. (HATRIC):
// a cached translation that outlives the state it was derived from silently
// breaks the paper's core claim — a GPA is logged IFF a write sets the EPT
// dirty flag during a walk. The CoherenceChecker audits the cross-layer
// invariants (catalogued in docs/invariants.md, with IDs matching the ones
// thrown here) at VM-exit/quantum boundaries and on demand:
//
//   TLB-*    every cached translation re-derives from the current guest
//            PT + EPT walk; cached write permission and cached dirty state
//            must be re-derivable (a stale writable+dirty entry would let
//            stores bypass logging — the OoH-fatal direction).
//   PML-*    hypervisor- and guest-level PML indices in bounds; in-flight
//            entries page-aligned, unique and within the VM's address space.
//   ACC-*    during a hypervisor-exclusive PML session every set EPT
//            dirty (or accessed, under read-logging) flag is accounted for
//            by exactly one consumer stage: the in-flight buffer or the
//            drained dirty log.
//   PT-*     guest page tables: GPAs in bounds, each guest frame owned by
//            at most one present PTE across all processes.
//   GRAN-1   multi-granularity exclusivity: no GPA (or GVA, per process) is
//            covered by two present leaves of different size — a double
//            cover would give one page two independent dirty flags, and
//            which one a walk sets would depend on walk order. The segment
//            backend's form: segments sorted, non-overlapping, internally
//            consistent.
//   SPLIT-1  while an eager-split logging session is active the EPT holds
//            no PS-bit leaves: every dirty flag set during the session is
//            4 KiB-precise, so the accounting ACC-* closes stays page-
//            granular across the split.
//   FRAME-*  host frame ownership exclusive per VM; the allocator's used
//            count equals the frames accounted for by EPT mappings and PML
//            buffers (leak/double-free detection).
//   RING-*   per-vCPU dirty rings: popped <= pushed, pushed - popped <=
//            capacity, pending/spill entries page-aligned and in bounds.
//   SHOOT-1  cached translations live only on vCPUs in the owning process's
//            mm_cpumask (else a shootdown could never reach them).
//   CLK-*    per-vCPU virtual time monotone across audits.
//   REG-*    notifier registry: no null or duplicate registrations, the
//            permanent hardware circuits head their chains, per-consumer
//            delivery counts never exceed the layer dispatch count.
//   POL-1    policy-driven backend handoff: when no kEptWpFault handler is
//            registered on any vCPU chain (no write-protection session is
//            live), no present EPT entry may remain write-protected with
//            its SPP bit clear — an orphaned protection left behind by a
//            backend switch would turn the next write into an unhandled
//            WP fault (and its dirty transition would never be observed).
//
// The oracle only reads machine state and charges zero virtual time, so
// enabling it cannot perturb any figure output. Auto-auditing (TestBed,
// run_tracked, migration rounds) is compiled in for Debug/CI builds via
// OOH_COHERENCE_AUDITS and compiled out in Release; the class itself is
// always available so the mutation self-test can drive it explicitly.
#pragma once

#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"
#include "base/vtime.hpp"
#include "sim/check/invariant.hpp"

namespace ooh::sim {
class Machine;
}
namespace ooh::hv {
class Hypervisor;
class Vm;
}
namespace ooh::guest {
class GuestKernel;
}

namespace ooh::check {

/// True when auto-audit wiring (TestBed / run_tracked / migration) is
/// compiled in. Debug and CI builds define OOH_COHERENCE_AUDITS; Release
/// builds leave the hot paths untouched.
#ifdef OOH_COHERENCE_AUDITS
inline constexpr bool kCoherenceAuditsEnabled = true;
#else
inline constexpr bool kCoherenceAuditsEnabled = false;
#endif

class CoherenceChecker {
 public:
  CoherenceChecker(sim::Machine& machine, hv::Hypervisor& hypervisor)
      : machine_(machine), hypervisor_(hypervisor) {}

  CoherenceChecker(const CoherenceChecker&) = delete;
  CoherenceChecker& operator=(const CoherenceChecker&) = delete;

  /// Register the guest kernel running in VM `vm_index` so per-process page
  /// tables join the audit scope. VMs without an attached kernel still get
  /// their TLB/EPT/PML/registry state audited.
  void attach_kernel(u32 vm_index, guest::GuestKernel& kernel);

  /// Audit one VM's cross-layer state. Touches only that VM (plus the
  /// thread-safe frame-allocator counters), so concurrent audits of
  /// *different* VMs from tenant worker threads are safe.
  void audit_vm(u32 vm_index);

  /// Audit machine-global state: frame-ownership exclusivity across VMs and
  /// allocator leak accounting. Single-threaded use only (walks every EPT).
  void audit_machine();

  /// audit_vm for every VM, then audit_machine. Single-threaded use only.
  void audit_all();

  /// Forget the last-seen per-vCPU virtual times. Restoring a machine
  /// snapshot legitimately rewinds virtual clocks; without this reset the
  /// CLK-1 monotonicity audit would flag the rewind as a bug. Callers:
  /// TestBed::restore only.
  void reset_clock_history();

  /// Total audit passes run (self-test instrumentation).
  [[nodiscard]] u64 audits_run() const noexcept {
    // relaxed-ok: self-test statistics counter; no state is published
    // through it.
    return audits_run_.load(std::memory_order_relaxed);
  }

  // Individual invariant families, public so the mutation self-test can
  // target one at a time. All throw InvariantViolation on disagreement.
  void audit_tlb(hv::Vm& vm);
  void audit_walk_caches(hv::Vm& vm);
  void audit_pml_buffers(hv::Vm& vm);
  void audit_rings(hv::Vm& vm);
  void audit_dirty_accounting(hv::Vm& vm);
  void audit_guest_tables(hv::Vm& vm);
  void audit_granularity(hv::Vm& vm);
  void audit_eager_split(hv::Vm& vm);
  void audit_registry(hv::Vm& vm);
  void audit_policy_handoff(hv::Vm& vm);
  void audit_clock(hv::Vm& vm);
  void audit_frames();

 private:
  [[nodiscard]] guest::GuestKernel* kernel_of(u32 vm_index) const noexcept;

  sim::Machine& machine_;
  hv::Hypervisor& hypervisor_;
  std::vector<guest::GuestKernel*> kernels_;  // indexed by VM id
  // Last-seen virtual time per VM and vCPU, for the monotonicity audit.
  // Guarded: the vectors may grow lazily while tenants audit concurrently.
  mutable sync::Mutex clock_mu_;
  std::vector<std::vector<VirtDuration>> clock_snapshots_;
  sync::Atomic<u64> audits_run_{0};
};

}  // namespace ooh::check
