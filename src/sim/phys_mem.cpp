#include "sim/phys_mem.hpp"

#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace ooh::sim {

PhysicalMemory::PhysicalMemory(u64 bytes) : total_frames_(pages_for_bytes(bytes)) {
  // Frame 0 is reserved (HPA 0 doubles as "not configured" in VMCS fields,
  // as firmware does on real machines).
  next_frame_ = 1;
}

Hpa PhysicalMemory::alloc_frame() {
  u64 fn;
  if (!free_list_.empty()) {
    fn = free_list_.back();
    free_list_.pop_back();
  } else if (next_frame_ < total_frames_) {
    fn = next_frame_++;
  } else {
    throw std::bad_alloc{};
  }
  ++used_frames_;
  return fn << kPageShift;
}

void PhysicalMemory::free_frame(Hpa frame) {
  assert(is_page_aligned(frame));
  const u64 fn = page_index(frame);
  assert(fn < next_frame_);
  data_.erase(fn);
  free_list_.push_back(fn);
  assert(used_frames_ > 0);
  --used_frames_;
}

u8* PhysicalMemory::frame_data(Hpa frame) {
  const u64 fn = page_index(frame);
  auto& slot = data_[fn];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(0);
  }
  return slot->data();
}

const u8* PhysicalMemory::frame_data_if_present(Hpa frame) const {
  const auto it = data_.find(page_index(frame));
  return it == data_.end() ? nullptr : it->second->data();
}

u64 PhysicalMemory::read_u64(Hpa addr) const {
  assert(page_offset(addr) + 8 <= kPageSize);
  const u8* p = frame_data_if_present(page_floor(addr));
  if (p == nullptr) return 0;
  u64 v;
  std::memcpy(&v, p + page_offset(addr), sizeof v);
  return v;
}

void PhysicalMemory::write_u64(Hpa addr, u64 value) {
  assert(page_offset(addr) + 8 <= kPageSize);
  u8* p = frame_data(page_floor(addr));
  std::memcpy(p + page_offset(addr), &value, sizeof value);
}

}  // namespace ooh::sim
