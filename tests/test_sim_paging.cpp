// Unit tests for the paging substrate: physical memory, radix tables, guest
// page table, EPT, TLB.
#include <gtest/gtest.h>

#include "sim/ept.hpp"
#include "sim/page_table.hpp"
#include "sim/phys_mem.hpp"
#include "sim/radix.hpp"
#include "sim/tlb.hpp"

namespace ooh::sim {
namespace {

// ---- physical memory -----------------------------------------------------------

TEST(PhysicalMemory, AllocatesDistinctFramesAndReservesZero) {
  PhysicalMemory pm(1 * kMiB);
  std::set<Hpa> frames;
  for (int i = 0; i < 10; ++i) {
    const Hpa f = pm.alloc_frame();
    EXPECT_NE(f, 0u) << "frame 0 must stay reserved";
    EXPECT_TRUE(is_page_aligned(f));
    EXPECT_TRUE(frames.insert(f).second);
  }
  EXPECT_EQ(pm.used_frames(), 10u);
}

TEST(PhysicalMemory, ExhaustionThrowsAndFreeRecycles) {
  PhysicalMemory pm(4 * kPageSize);  // 4 frames, 1 reserved
  const Hpa a = pm.alloc_frame();
  const Hpa b = pm.alloc_frame();
  const Hpa c = pm.alloc_frame();
  (void)b;
  (void)c;
  EXPECT_THROW((void)pm.alloc_frame(), std::bad_alloc);
  pm.free_frame(a);
  EXPECT_EQ(pm.alloc_frame(), a);
}

TEST(PhysicalMemory, LazyBackingAndWordAccess) {
  PhysicalMemory pm(1 * kMiB);
  const Hpa f = pm.alloc_frame();
  EXPECT_EQ(pm.backed_frames(), 0u);
  EXPECT_EQ(pm.frame_data_if_present(f), nullptr);
  EXPECT_EQ(pm.read_u64(f + 64), 0u);  // unbacked reads as zero
  pm.write_u64(f + 64, 0xDEADBEEF);
  EXPECT_EQ(pm.backed_frames(), 1u);
  EXPECT_EQ(pm.read_u64(f + 64), 0xDEADBEEFu);
  pm.free_frame(f);
  EXPECT_EQ(pm.backed_frames(), 0u);  // backing released with the frame
}

// ---- radix ---------------------------------------------------------------------

TEST(RadixTable4, FindReturnsNullUntilEnsured) {
  RadixTable4<int> t;
  EXPECT_EQ(t.find(0x7f00'1234'5000), nullptr);
  int& v = t.ensure(0x7f00'1234'5000);
  v = 99;
  ASSERT_NE(t.find(0x7f00'1234'5678), nullptr);  // same page
  EXPECT_EQ(*t.find(0x7f00'1234'5000), 99);
}

TEST(RadixTable4, ForEachVisitsDistinctPages) {
  RadixTable4<int> t;
  const u64 addrs[] = {0x0, 0x1000, 0x200000, 0x40000000, 0x7f'ffff'f000};
  for (u64 a : addrs) t.ensure(a) = 1;
  u64 visited = 0;
  std::set<u64> pages;
  t.for_each([&](u64 page, int& v) {
    if (v == 1) {
      ++visited;
      pages.insert(page);
    }
  });
  EXPECT_EQ(visited, 5u);
  for (u64 a : addrs) EXPECT_TRUE(pages.contains(a));
}

// ---- guest page table ------------------------------------------------------------

TEST(GuestPageTable, MapUnmapAndFlags) {
  GuestPageTable pt;
  pt.map(0x10000000, 0x5000, /*writable=*/true);
  ASSERT_NE(pt.pte(0x10000123), nullptr);
  Pte* e = pt.pte(0x10000000);
  EXPECT_TRUE(e->present);
  EXPECT_TRUE(e->writable);
  EXPECT_FALSE(e->dirty);
  EXPECT_EQ(e->gpa_page, 0x5000u);
  EXPECT_EQ(pt.present_pages(), 1u);
  pt.unmap(0x10000000);
  EXPECT_FALSE(pt.pte(0x10000000)->present);
  EXPECT_EQ(pt.present_pages(), 0u);
}

TEST(GuestPageTable, RemapResetsFlags) {
  GuestPageTable pt;
  pt.map(0x1000, 0x2000, true);
  pt.pte(0x1000)->soft_dirty = true;
  pt.pte(0x1000)->dirty = true;
  pt.map(0x1000, 0x3000, false);
  EXPECT_FALSE(pt.pte(0x1000)->soft_dirty);
  EXPECT_FALSE(pt.pte(0x1000)->dirty);
  EXPECT_FALSE(pt.pte(0x1000)->writable);
  EXPECT_EQ(pt.present_pages(), 1u);  // remap does not double-count
}

TEST(GuestPageTable, ForEachPresentSkipsUnmapped) {
  GuestPageTable pt;
  pt.map(0x1000, 0x2000, true);
  pt.map(0x3000, 0x4000, true);
  pt.unmap(0x1000);
  u64 n = 0;
  pt.for_each_present([&](Gva gva, Pte&) {
    EXPECT_EQ(gva, 0x3000u);
    ++n;
  });
  EXPECT_EQ(n, 1u);
}

// ---- EPT -----------------------------------------------------------------------

TEST(Ept, TranslateAndDirtyFlags) {
  Ept ept;
  EXPECT_EQ(ept.entry(0x4000), nullptr);
  ept.map(0x4000, 0x9000);
  Hpa hpa = 0;
  ASSERT_TRUE(ept.translate(0x4abc, hpa));
  EXPECT_EQ(hpa, 0x9abcu);
  EXPECT_FALSE(ept.translate(0x8000, hpa));
  EptEntry* e = ept.entry(0x4000);
  EXPECT_FALSE(e->dirty);
  e->dirty = true;
  EXPECT_TRUE(ept.entry(0x4fff)->dirty);
  EXPECT_EQ(ept.present_pages(), 1u);
  ept.unmap(0x4000);
  EXPECT_FALSE(ept.translate(0x4000, hpa));
}

// ---- TLB -----------------------------------------------------------------------

TEST(Tlb, HitMissInvalidate) {
  Tlb tlb(16);
  EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
  tlb.insert(1, 0x1000, {.gpa_page = 0x2000, .hpa_page = 0x3000, .writable = true, .dirty = false});
  ASSERT_NE(tlb.lookup(1, 0x1000), nullptr);
  EXPECT_EQ(tlb.lookup(2, 0x1000), nullptr) << "entries are pid-tagged";
  tlb.invalidate_page(1, 0x1000);
  EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
}

TEST(Tlb, FlushPidIsSelective) {
  Tlb tlb(16);
  tlb.insert(1, 0x1000, {});
  tlb.insert(2, 0x1000, {});
  tlb.flush_pid(1);
  EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
  EXPECT_NE(tlb.lookup(2, 0x1000), nullptr);
  tlb.flush_all();
  EXPECT_EQ(tlb.lookup(2, 0x1000), nullptr);
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, CapacityBoundRespected) {
  Tlb tlb(4);
  for (u64 i = 0; i < 100; ++i) tlb.insert(1, i * kPageSize, {});
  EXPECT_LE(tlb.size(), 4u);
  // The most recent insert always survives (it cannot be its own victim).
  EXPECT_NE(tlb.lookup(1, 99 * kPageSize), nullptr);
  // Exactly 4 of the 100 pages are present.
  int present = 0;
  for (u64 i = 0; i < 100; ++i) {
    if (tlb.lookup(1, i * kPageSize) != nullptr) ++present;
  }
  EXPECT_EQ(present, 4);
}

TEST(Tlb, ReinsertUpdatesEntry) {
  Tlb tlb(4);
  tlb.insert(1, 0x1000, {.gpa_page = 0, .hpa_page = 0, .writable = false, .dirty = false});
  tlb.insert(1, 0x1000, {.gpa_page = 0, .hpa_page = 0, .writable = true, .dirty = true});
  ASSERT_NE(tlb.lookup(1, 0x1000), nullptr);
  EXPECT_TRUE(tlb.lookup(1, 0x1000)->dirty);
  EXPECT_EQ(tlb.size(), 1u);
}

}  // namespace
}  // namespace ooh::sim
