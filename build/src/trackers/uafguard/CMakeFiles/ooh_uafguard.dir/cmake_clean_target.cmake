file(REMOVE_RECURSE
  "libooh_uafguard.a"
)
