# Empty dependencies file for table1_ufd_proc_overhead.
# This may be replaced when dependencies are built.
