
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/run_app.cpp" "examples/CMakeFiles/run_app.dir/run_app.cpp.o" "gcc" "examples/CMakeFiles/run_app.dir/run_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ooh/CMakeFiles/ooh_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/criu/CMakeFiles/ooh_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/boehmgc/CMakeFiles/ooh_boehmgc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ooh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ooh_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/ooh_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ooh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
