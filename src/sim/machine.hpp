// The physical machine: RAM + the experiment-wide clock, counters and cost
// model. One Machine hosts one hypervisor and any number of VMs.
#pragma once

#include "base/clock.hpp"
#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "sim/phys_mem.hpp"

namespace ooh::sim {

class Machine {
 public:
  explicit Machine(u64 host_mem_bytes, CostModel cost_model = CostModel::paper_calibrated())
      : cost(cost_model), pmem(host_mem_bytes) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  void charge_us(double us) { clock.advance(usecs(us)); }
  void charge_ns(double ns) { clock.advance(nsecs(ns)); }
  void count(Event e, u64 n = 1) noexcept { counters.add(e, n); }

  VirtualClock clock;
  EventCounters counters;
  CostModel cost;
  PhysicalMemory pmem;
};

}  // namespace ooh::sim
