file(REMOVE_RECURSE
  "../bench/fig5_boehm_tracker"
  "../bench/fig5_boehm_tracker.pdb"
  "CMakeFiles/fig5_boehm_tracker.dir/fig5_boehm_tracker.cpp.o"
  "CMakeFiles/fig5_boehm_tracker.dir/fig5_boehm_tracker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_boehm_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
