// The paper's micro-benchmark (Listing 1): an array parser that writes one
// word per page of an mlocked buffer, pass after pass. Table I and Fig. 4
// are built on it.
#pragma once

#include "workloads/workload.hpp"

namespace ooh::wl {

class ArrayParser final : public Workload {
 public:
  /// `mem_bytes` is the monitored array size (the paper sweeps 1MB..1GB);
  /// `passes` is how many full passes run() performs.
  ArrayParser(u64 mem_bytes, unsigned passes = 1)
      : mem_bytes_(page_ceil(mem_bytes)), passes_(passes) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "array-parser"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override { return mem_bytes_; }

  void setup(guest::Process& proc) override {
    base_ = proc.mmap(mem_bytes_);
    // mlockall(MCL_CURRENT|MCL_FUTURE): pre-fault every page so the tracked
    // run measures tracking, not demand paging.
    proc.touch_range_write(base_, mem_bytes_);
  }

  void run(guest::Process& proc) override {
    for (unsigned pass = 0; pass < passes_; ++pass) {
      // region[(i * PAGE_SIZE) / sizeof(unsigned long)] = i;  -- the array
      // is not data-backed, so the batched metadata store is the same
      // access stream (and virtual time) as the per-page write_u64 loop.
      proc.touch_range_write(base_, mem_bytes_);
    }
  }

  [[nodiscard]] Gva base() const noexcept { return base_; }

 private:
  u64 mem_bytes_;
  unsigned passes_;
  Gva base_ = 0;
};

}  // namespace ooh::wl
