// A guest userspace process: VMAs, a page table, and the memory-access API
// that workloads run against. Every store routes through the simulated MMU,
// so dirty-tracking mechanisms observe real page-granularity write traffic.
//
// The process also keeps a zero-virtual-cost "truth" set of pages written
// since the last reset; the oracle tracker and the completeness tests use it
// (paper evaluation question 3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "base/flat_page_map.hpp"
#include "base/types.hpp"

namespace ooh::sim {
class GuestPageTable;
}
namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::guest {

class GuestKernel;

struct Vma {
  Gva start = 0;
  Gva end = 0;  ///< exclusive.
  bool writable = true;
  bool data_backed = false;  ///< stores/loads move real bytes through host RAM.
  enum class Uffd { kNone, kMissing, kWriteProtect } uffd = Uffd::kNone;

  [[nodiscard]] bool contains(Gva a) const noexcept { return a >= start && a < end; }
  [[nodiscard]] u64 bytes() const noexcept { return end - start; }
};

class Process {
 public:
  Process(GuestKernel& kernel, u32 pid) : kernel_(kernel), pid_(pid) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] u32 pid() const noexcept { return pid_; }
  [[nodiscard]] GuestKernel& kernel() noexcept { return kernel_; }

  // ---- SMP placement --------------------------------------------------------
  /// vCPU this process currently runs on (set at create_process, changed by
  /// GuestKernel::migrate_process).
  [[nodiscard]] unsigned cpu() const noexcept { return cpu_; }
  /// mm_cpumask: bit per vCPU the process has ever run on. TLB shootdowns
  /// IPI exactly the *other* set bits; never-migrated processes keep a
  /// singleton mask and pay nothing (SHOOT-1, docs/invariants.md).
  [[nodiscard]] u64 cpu_mask() const noexcept { return cpu_mask_; }

  /// Map `bytes` of anonymous memory (page-rounded); returns the base GVA.
  /// Pages are demand-allocated on first touch, like real mmap.
  Gva mmap(u64 bytes, bool data_backed = false);

  /// Unmap a whole VMA by its base address: PTEs are torn down, cached
  /// translations dropped, and the pages vanish from tracking and truth.
  void munmap(Gva base);

  // ---- accesses (each one goes through the MMU) ----------------------------
  void write_u64(Gva gva, u64 value);
  [[nodiscard]] u64 read_u64(Gva gva);
  /// Metadata-only store: full translation/dirty semantics, no data bytes.
  void touch_write(Gva gva);
  void touch_read(Gva gva);
  /// Batched metadata touches: one access every `stride` bytes over
  /// [gva, gva+bytes), equivalent to (and bit-identical in virtual time
  /// with) calling touch_write/touch_read in a loop, but runs of accesses
  /// the TLB can serve skip the per-access pipeline on the host.
  void touch_range(Gva gva, u64 bytes, bool is_write, u64 stride = kPageSize);
  void touch_range_write(Gva gva, u64 bytes, u64 stride = kPageSize) {
    touch_range(gva, bytes, /*is_write=*/true, stride);
  }
  void touch_range_read(Gva gva, u64 bytes, u64 stride = kPageSize) {
    touch_range(gva, bytes, /*is_write=*/false, stride);
  }
  void write_bytes(Gva gva, std::span<const u8> data);
  void read_bytes(Gva gva, std::span<u8> out);

  [[nodiscard]] u64 mapped_bytes() const noexcept { return mapped_bytes_; }
  [[nodiscard]] const std::vector<Vma>& vmas() const noexcept { return vmas_; }
  /// Mutable VMA access for kernel subsystems (ufd registration flags).
  [[nodiscard]] std::vector<Vma>& vmas_mut() noexcept { return vmas_; }
  [[nodiscard]] Vma* vma_of(Gva gva) noexcept;

  // ---- ground truth ---------------------------------------------------------
  /// Pages written since truth_reset(), each tagged with the global write
  /// sequence of its *last* write -- so interval consumers (oracle tracker)
  /// can tell re-dirtied pages apart from stale ones.
  [[nodiscard]] const FlatPageMap& truth_dirty() const noexcept {
    return truth_;
  }
  [[nodiscard]] u64 truth_seq() const noexcept { return truth_seq_; }
  void truth_reset() { truth_.clear(); }
  void truth_record(Gva gva_page) { truth_.insert_or_assign(gva_page, ++truth_seq_); }

 private:
  friend class GuestKernel;
  friend struct ooh::snapshot::Access;

  GuestKernel& kernel_;
  u32 pid_;
  unsigned cpu_ = 0;
  u64 cpu_mask_ = 1;
  std::vector<Vma> vmas_;
  std::size_t vma_mru_ = 0;  ///< index of the last VMA vma_of resolved to.
  /// The kernel-owned page table for this process, cached at creation so
  /// GuestKernel::page_table needs no scan (the table is heap-allocated and
  /// lives as long as the process).
  sim::GuestPageTable* pt_ = nullptr;
  Gva next_mmap_ = 0x1000'0000;  // grows upward, one guard page between VMAs
  u64 mapped_bytes_ = 0;
  FlatPageMap truth_;
  u64 truth_seq_ = 0;
};

}  // namespace ooh::guest
