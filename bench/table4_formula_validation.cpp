// Table IV: validation of the analytical model (Formulas 1-4).
//
// The paper runs CRIU over tkrzw-baby, collects per-event counts, and shows
// the formulas estimate E(C_tker) with ~96% and E(C_tked_tker) with ~99%
// accuracy. We do the same against the simulator for SPML and /proc (and,
// beyond the paper, for ufd and EPML).
#include "common.hpp"
#include "model/formulas.hpp"
#include "workloads/registry.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/64);
  bench::print_header("Table IV", "Formula validation: estimated vs measured times");

  TextTable t({"technique", "E(C_tker) meas (ms)", "E(C_tker) est (ms)", "acc (%)",
               "E(C_tked) meas (ms)", "E(C_tked) est (ms)", "acc (%)"});

  for (const lib::Technique tech : {lib::Technique::kSpml, lib::Technique::kProc,
                                    lib::Technique::kUfd, lib::Technique::kEpml}) {
    // Ideal run (fresh bed).
    double ideal_us = 0.0;
    {
      lib::TestBed bed;
      auto& k = bed.kernel();
      auto& proc = k.create_process();
      auto w = wl::make_workload("baby", wl::ConfigSize::kSmall, args.scale);
      w->setup(proc);
      ideal_us = lib::run_baseline(k, proc, w->runner()).tracked_time.count();
    }
    // Tracked run.
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    auto w = wl::make_workload("baby", wl::ConfigSize::kSmall, args.scale);
    w->setup(proc);
    auto tracker = lib::make_tracker(tech, k, proc);
    lib::RunOptions opts;
    opts.collect_period = usecs(ideal_us * 0.75);
    opts.max_collections = 1;
    opts.final_collect = false;
    const lib::RunResult r = lib::run_tracked(k, proc, w->runner(), tracker.get(), opts);
    tracker->shutdown();

    const double meas_tker = r.tracker_time().count() - r.phases.init.count();
    const double meas_tked = r.tracked_time.count();
    const model::ModelParams params =
        model::params_from_events(tech, proc.mapped_bytes(), r.events);
    const model::Estimate est =
        model::estimate(tech, params, CostModel::paper_calibrated());
    const double est_tker = est.tracker_us(0.0);
    const double est_tked = est.tracked_us(ideal_us, 0.0);
    t.add_row(std::string(lib::technique_name(tech)),
              {meas_tker / 1e3, est_tker / 1e3,
               meas_tker > 0 ? model::accuracy_pct(est_tker, meas_tker) : 100.0,
               meas_tked / 1e3, est_tked / 1e3,
               model::accuracy_pct(est_tked, meas_tked)},
              2);
  }
  t.print(std::cout);
  std::printf("\nShape check: accuracies comparable to the paper's 96%%+/99%%.\n");
  return 0;
}
