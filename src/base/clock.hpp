// The experiment-wide virtual clock.
//
// Every simulated CPU action (page walk, VM-exit, hypercall, disk write,
// workload compute) charges time here. Attribution scopes let higher layers
// split the same timeline into "Tracked work" vs "Tracker work" vs
// per-phase buckets without a second clock.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "base/vtime.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh {

class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time since experiment start.
  [[nodiscard]] VirtDuration now() const noexcept { return now_; }

  /// Advance time by `d` (>= 0), crediting every open attribution bucket.
  void advance(VirtDuration d) noexcept {
    assert(d.count() >= 0.0);
    now_ += d;
    for (auto* b : open_buckets_) *b += d;
  }

  /// RAII attribution scope: all time advanced while alive is also added to
  /// `bucket`. Scopes nest; one duration may land in several buckets.
  class Scope {
   public:
    Scope(VirtualClock& clock, VirtDuration& bucket) : clock_(clock), bucket_(&bucket) {
      clock_.open_buckets_.push_back(bucket_);
    }
    ~Scope() {
      assert(!clock_.open_buckets_.empty() && clock_.open_buckets_.back() == bucket_);
      clock_.open_buckets_.pop_back();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    VirtualClock& clock_;
    VirtDuration* bucket_;
  };

  /// Convenience: measure the virtual time taken by `fn`.
  template <typename Fn>
  VirtDuration measure(Fn&& fn) {
    const VirtDuration start = now_;
    fn();
    return now_ - start;
  }

  void reset() noexcept {
    assert(open_buckets_.empty());
    now_ = VirtDuration{0};
  }

 private:
  friend struct ooh::snapshot::Access;

  VirtDuration now_{0};
  std::vector<VirtDuration*> open_buckets_;
};

}  // namespace ooh
