// The hypervisor (Xen-like): VM lifecycle, VM-exit handling, the OoH
// hypercall interface of §IV, and coexistence between the guest's use of
// PML (SPML) and the hypervisor's own (live migration).
//
// SMP: every PML session is per-vCPU (buffer, drain chain, SPML ring), and a
// hypercall always operates on the session of the vCPU it arrived on. The
// hypervisor's own harvest walks all vCPUs' buffers and dirty rings at a
// quiescent point; drain_dirty_ring() is the concurrent path — userspace
// popping one vCPU's ring while the other vCPUs (and even the producer)
// keep running.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "hypervisor/vm.hpp"
#include "sim/hw_if.hpp"
#include "sim/machine.hpp"

namespace ooh::hv {

class Hypervisor final : public sim::VmExitHandler {
 public:
  explicit Hypervisor(sim::Machine& machine) : machine_(machine) {}

  /// Create a VM with `mem_bytes` of guest-physical space and `vcpus`
  /// virtual CPUs. Host frames are demand-allocated on EPT violations, as
  /// on a real overcommitted host.
  Vm& create_vm(u64 mem_bytes, std::size_t spml_ring_entries = 1u << 20,
                unsigned vcpus = 1);

  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] Vm& vm(std::size_t i) noexcept { return *vms_[i]; }

  // ---- sim::VmExitHandler ---------------------------------------------------
  void on_pml_full(sim::Vcpu& vcpu) override;
  void on_ept_violation(sim::Vcpu& vcpu, Gpa gpa, bool is_write) override;
  u64 on_hypercall(sim::Vcpu& vcpu, sim::Hypercall nr, u64 a0, u64 a1) override;

  // ---- hypervisor's own PML use (live migration, checkpoint) ----------------
  /// Start logging for the whole VM: clear all EPT dirty flags, flush every
  /// vCPU's TLB, arm PML on every vCPU.
  void enable_pml_for_hyp(Vm& vm);
  void disable_pml_for_hyp(Vm& vm);
  /// Quiescent harvest: flush every vCPU's in-flight PML buffer, then take
  /// the union of all dirty rings (+ spill logs) and re-arm logging.
  [[nodiscard]] std::vector<Gpa> harvest_hyp_dirty(Vm& vm);
  /// Final stop-and-copy harvest: drain + take the rings WITHOUT re-arming
  /// (no dirty-flag reset, no INVEPT) — the vCPUs are paused and will not
  /// run on this host again. Captures writes that landed between the last
  /// pre-copy harvest and the pause.
  [[nodiscard]] std::vector<Gpa> collect_dirty_paused(Vm& vm);

  /// Concurrent userspace drain: pop everything currently visible in vCPU
  /// `cpu`'s dirty ring into `out` while the producer keeps running. Charges
  /// no virtual time (host-side work off the guest's critical path); spill
  /// entries and dirty-flag re-arm are handled by the next quiescent
  /// harvest. Returns the number of entries popped. Safe to call from a
  /// host thread other than the vCPU's (SPSC: one drainer per ring).
  std::size_t drain_dirty_ring(Vm& vm, unsigned cpu, std::vector<Gpa>& out);

  // ---- working-set-size estimation (read-logging PML extension) -------------
  /// Start WSS sampling: PML logs on accessed-flag transitions, so the
  /// harvested set is the *touched* (read or written) pages -- the extension
  /// of Bitchebe et al. cited in the paper's related work. Mutually
  /// exclusive with a guest SPML session (one buffer, different meanings).
  void enable_wss_sampling(Vm& vm);
  void disable_wss_sampling(Vm& vm);
  /// Touched pages since the last harvest; resets accessed+dirty flags.
  [[nodiscard]] std::vector<Gpa> harvest_wss(Vm& vm);

  [[nodiscard]] sim::Machine& machine() noexcept { return machine_; }

  // ---- coherence-oracle seam -------------------------------------------------
  /// The environment (TestBed) may install a hook that audits one VM's
  /// cross-layer state; lower layers then request audits at their natural
  /// boundaries (collection intervals, migration rounds) without depending
  /// on the checker. The hook must be per-VM-scoped: tenants audit
  /// concurrently from worker threads.
  void set_audit_hook(std::function<void(u32 vm_index)> hook) {
    audit_hook_ = std::move(hook);
  }
  /// Run the installed audit hook over `vm_index` (no-op when absent).
  void audit_now(u32 vm_index) {
    if (audit_hook_) audit_hook_(vm_index);
  }

 private:
  [[nodiscard]] Vm& vm_of(const sim::Vcpu& vcpu);
  void ensure_pml_buffer(Vm& vm, unsigned cpu);
  /// Clear EPT dirty flags for `gpa_pages` and invalidate cached
  /// translations on every vCPU, re-arming PML for them (interval/round
  /// boundary). Charges land on `ctx` (the acting vCPU's timeline).
  void reset_dirty_for(Vm& vm, std::span<const Gpa> gpa_pages, sim::ExecContext& ctx);
  /// Copy vCPU `cpu`'s logged GPAs to their consumers, then reset the index.
  /// Dirty flags stay set until the consumer's interval boundary.
  void drain_pml_buffer(Vm& vm, unsigned cpu);
  void drain_all_pml_buffers(Vm& vm);
  /// Shatter every huge EPT leaf down to 4 KiB (KVM eager page splitting),
  /// charging one ept_split_leaf_us per split performed. No-op (and no
  /// charge) when the EPT has no huge leaves.
  void eager_split_all(Vm& vm, sim::ExecContext& ctx);
  void clear_all_ept_dirty(Vm& vm, sim::ExecContext& ctx);
  void update_pml_enable(Vm& vm, unsigned cpu);
  /// INVEPT-style whole-VM invalidation: flush each vCPU's TLB, counting and
  /// charging one kTlbFlush per vCPU on the acting context.
  void flush_all_tlbs(Vm& vm, sim::ExecContext& ctx);
  /// Quiescent ring harvest into an insertion-ordered dedup set; ring
  /// contents first (event order), spill logs after.
  [[nodiscard]] std::vector<Gpa> take_ring_contents(Vm& vm);

  sim::Machine& machine_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::function<void(u32)> audit_hook_;
};

}  // namespace ooh::hv
