#include "guest/procfs.hpp"

#include <algorithm>

#include "guest/kernel.hpp"

namespace ooh::guest {

void ProcFs::clear_refs(Process& proc) {
  sim::ExecContext& m = kernel_.ctx_of(proc);
  m.count(Event::kClearRefs);
  m.count(Event::kContextSwitch, 2);  // the write() syscall's world switches
  m.charge_us(m.cost.clear_refs_us(proc.mapped_bytes()) + 2 * m.cost.ctx_switch_us);

  // Clear soft-dirty and write-protect every present PTE so the next store
  // faults; the fault handler restores write access and re-sets the bit.
  kernel_.page_table(proc).for_each_present([](Gva, sim::Pte& pte) {
    pte.soft_dirty = false;
    pte.writable = false;
  });
  // Permission-reducing PT update: shoot down every vCPU in the cpumask.
  kernel_.tlb_flush_pid(proc);
  m.count(Event::kTlbFlush);
  m.charge_us(m.cost.tlb_flush_us);
}

std::vector<Gva> ProcFs::pagemap_dirty(Process& proc) {
  sim::ExecContext& m = kernel_.ctx_of(proc);
  m.count(Event::kPagemapScan);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.pagemap_scan_us(proc.mapped_bytes()) + 2 * m.cost.ctx_switch_us);

  std::vector<Gva> dirty;
  kernel_.page_table(proc).for_each_present([&](Gva gva, sim::Pte& pte) {
    if (pte.soft_dirty) dirty.push_back(gva);
  });
  std::sort(dirty.begin(), dirty.end());
  return dirty;
}

bool ProcFs::on_track(sim::TrackLayer /*layer*/, const sim::TrackEvent& ev) {
  Process* proc = kernel_.find(ev.pid);
  if (proc == nullptr) return false;
  sim::Pte* pte = kernel_.page_table(*proc).pte(ev.gva_page);
  if (pte == nullptr || !pte->present) return false;

  // Soft-dirty write-protect fault (/proc technique): set the bit, restore
  // write access (Table V metric M5 per fault, plus two world switches).
  // Charges land on the faulting vCPU (ev.vcpu is the process's own).
  sim::ExecContext& m = kernel_.ctx_of(*proc);
  m.count(Event::kPageFaultSoftDirty);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.pfh_kernel_per_fault_us(proc->mapped_bytes()) +
              2 * m.cost.ctx_switch_us);
  pte->soft_dirty = true;
  pte->writable = true;
  ev.vcpu->tlb().invalidate_page(ev.pid, ev.gva_page);
  return true;
}

std::vector<std::pair<Gva, Gpa>> ProcFs::pagemap_entries(Process& proc) {
  std::vector<std::pair<Gva, Gpa>> out;
  // for_each_mapping computes the per-4 KiB GPA even where a huge leaf or a
  // segment run shares one Pte (pte.gpa_page would be the region base).
  kernel_.page_table(proc).for_each_mapping(
      [&](Gva gva, const sim::Pte&, Gpa gpa) { out.emplace_back(gva, gpa); });
  return out;
}

}  // namespace ooh::guest
