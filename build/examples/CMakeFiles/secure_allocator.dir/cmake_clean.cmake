file(REMOVE_RECURSE
  "CMakeFiles/secure_allocator.dir/secure_allocator.cpp.o"
  "CMakeFiles/secure_allocator.dir/secure_allocator.cpp.o.d"
  "secure_allocator"
  "secure_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
