// Memory lifecycle + incremental checkpoint chains: munmap semantics, how
// unmapping interacts with every tracker, and CRIU pre-dump series whose
// image must restore the *latest* state after each step.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "guest/procfs.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/criu/checkpoint.hpp"

namespace ooh {
namespace {

// ---- munmap ----------------------------------------------------------------------

TEST(Munmap, TearsDownMappingsAndTruth) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva a = proc.mmap(4 * kPageSize);
  const Gva b = proc.mmap(2 * kPageSize);
  for (int i = 0; i < 4; ++i) proc.touch_write(a + i * kPageSize);
  proc.touch_write(b);
  EXPECT_EQ(proc.mapped_bytes(), 6 * kPageSize);

  proc.munmap(a);
  EXPECT_EQ(proc.mapped_bytes(), 2 * kPageSize);
  EXPECT_EQ(k.page_table(proc).present_pages(), 1u);
  EXPECT_EQ(proc.truth_dirty().size(), 1u);
  EXPECT_THROW(proc.touch_write(a), guest::GuestSegfault);
  proc.touch_write(b + kPageSize);  // the other VMA is untouched
  EXPECT_THROW(proc.munmap(a), std::invalid_argument) << "double munmap";
  EXPECT_THROW(proc.munmap(b + kPageSize), std::invalid_argument)
      << "munmap requires the VMA base";
}

TEST(Munmap, UnmappedPagesVanishFromProcCollection) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva keep = proc.mmap(2 * kPageSize);
  const Gva gone = proc.mmap(2 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kProc, k, proc);
  tracker->init();
  tracker->begin_interval();
  proc.touch_write(keep);
  proc.touch_write(gone);
  proc.munmap(gone);
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty, std::vector<Gva>{keep});
  tracker->shutdown();
}

TEST(Munmap, EpmlCollectionToleratesUnmappedEntries) {
  // EPML logged the GVA before the unmap; collection may still report it,
  // and consumers (CRIU dump) must skip pages that no longer exist.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva keep = proc.mmap(2 * kPageSize);
  const Gva gone = proc.mmap(2 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  proc.touch_write(keep);
  proc.touch_write(gone);
  k.scheduler().exit_process(proc.pid());
  proc.munmap(gone);

  criu::Checkpointer cp(k, lib::Technique::kEpml);
  criu::CheckpointImage image;
  for (const guest::Vma& vma : proc.vmas()) {
    image.vmas.push_back({vma.start, vma.bytes(), vma.data_backed});
  }
  cp.dump_pages(proc, tracker->collect(), image);
  EXPECT_EQ(image.pages.size(), 1u) << "the unmapped page was skipped";
  EXPECT_TRUE(image.pages.contains(keep));
  tracker->shutdown();
}

TEST(Munmap, RemapAfterUnmapGetsFreshTrackingState) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva a = proc.mmap(kPageSize);
  proc.touch_write(a);
  k.procfs().clear_refs(proc);
  proc.munmap(a);
  const Gva b = proc.mmap(kPageSize);  // may reuse no address (bump allocator)
  proc.touch_write(b);
  const std::vector<Gva> dirty = k.procfs().pagemap_dirty(proc);
  EXPECT_EQ(dirty, std::vector<Gva>{b});
}

// ---- incremental checkpoint chains --------------------------------------------------

TEST(IncrementalChain, EachStepRestoresLatestState) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 32;
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  for (u64 i = 0; i < pages; ++i) proc.write_u64(base + i * kPageSize, i);

  criu::IncrementalSession session(k, lib::Technique::kEpml, proc);
  EXPECT_EQ(session.full_copy_pages(), pages);

  Rng rng(5);
  for (int s = 1; s <= 4; ++s) {
    const auto res = session.step([&](guest::Process& p) {
      for (int w = 0; w < 5; ++w) {
        p.write_u64(base + rng.below(pages) * kPageSize, 1000 * s + w);
      }
    });
    EXPECT_LE(res.dirty_pages, 5u);
    EXPECT_GT(res.run_time.count(), 0.0);

    guest::Process& restored = k.create_process();
    criu::restore(restored, session.image());
    for (u64 i = 0; i < pages; ++i) {
      EXPECT_EQ(restored.read_u64(base + i * kPageSize),
                proc.read_u64(base + i * kPageSize))
          << "step " << s << " page " << i;
    }
  }
  EXPECT_EQ(session.steps(), 4u);
}

TEST(IncrementalChain, DumpCostTracksDirtySetNotMemorySize) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 2048;  // 8 MiB
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  criu::IncrementalSession session(k, lib::Technique::kEpml, proc);
  const auto small_step = session.step([&](guest::Process& p) {
    for (int i = 0; i < 8; ++i) p.touch_write(base + i * kPageSize);
  });
  const auto big_step = session.step([&](guest::Process& p) {
    for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
  });
  EXPECT_EQ(small_step.dirty_pages, 8u);
  EXPECT_EQ(big_step.dirty_pages, pages);
  EXPECT_LT(small_step.dump_time.count() * 10, big_step.dump_time.count())
      << "EPML incremental dumps pay for dirty pages, not memory size";
}

TEST(IncrementalChain, NewVmaDuringStepIsRestored) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(2 * kPageSize, true);
  proc.write_u64(base, 42);
  criu::IncrementalSession session(k, lib::Technique::kProc, proc);
  Gva extra = 0;
  (void)session.step([&](guest::Process& p) {
    extra = p.mmap(kPageSize, true);
    p.write_u64(extra, 77);
  });
  guest::Process& restored = k.create_process();
  criu::restore(restored, session.image());
  EXPECT_EQ(restored.read_u64(base), 42u);
  EXPECT_EQ(restored.read_u64(extra), 77u);
}

}  // namespace
}  // namespace ooh
