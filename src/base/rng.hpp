// Deterministic RNG for workload generators (xoshiro256**).
//
// Workloads must be reproducible run-to-run so experiment deltas come from
// the tracking technique, not the input; std::mt19937 would work but its
// state is large and its distributions are implementation-defined. We keep
// both generator and derivation functions in-repo.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace ooh {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, per xoshiro reference.
    u64 x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  u64 next() noexcept {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  u64 below(u64 bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  u64 s_[4]{};
};

}  // namespace ooh
