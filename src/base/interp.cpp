#include "base/interp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ooh {

LogLogInterp::LogLogInterp(std::vector<Point> points) : pts_(std::move(points)) {
  if (pts_.empty()) throw std::invalid_argument("LogLogInterp: no points");
  lx_.reserve(pts_.size());
  ly_.reserve(pts_.size());
  double prev_x = 0.0;
  for (const Point& p : pts_) {
    if (p.x <= 0.0 || p.y <= 0.0) throw std::invalid_argument("LogLogInterp: nonpositive point");
    if (p.x <= prev_x) throw std::invalid_argument("LogLogInterp: x not strictly increasing");
    prev_x = p.x;
    lx_.push_back(std::log(p.x));
    ly_.push_back(std::log(p.y));
  }
}

double LogLogInterp::at(double x) const {
  assert(!pts_.empty());
  if (x <= 0.0) throw std::invalid_argument("LogLogInterp::at: nonpositive x");
  if (pts_.size() == 1) return pts_.front().y;

  const double l = std::log(x);
  // Segment index: the pair (i, i+1) bracketing l, clamped to end segments
  // so that queries outside the calibrated range extrapolate the end slope.
  std::size_t i = 0;
  if (l >= lx_.back()) {
    i = lx_.size() - 2;
  } else if (l > lx_.front()) {
    const auto it = std::upper_bound(lx_.begin(), lx_.end(), l);
    i = static_cast<std::size_t>(it - lx_.begin()) - 1;
  }
  const double t = (l - lx_[i]) / (lx_[i + 1] - lx_[i]);
  return std::exp(ly_[i] + t * (ly_[i + 1] - ly_[i]));
}

}  // namespace ooh
