// Per-vCPU TLB.
//
// The TLB is what makes dirty-page *logging* an edge-triggered event: a
// store through a translation whose dirty state is already cached performs
// no page walk, sets no dirty flag, and therefore logs nothing. Tracking
// techniques re-arm logging by clearing dirty/permission state and
// invalidating the cached translation (clear_refs -> full flush; PML drain
// -> per-page invalidation), exactly as on real hardware.
//
// Entries are ASID-tagged by guest PID (PCID-style), so context switches
// need not flush.
//
// Storage is a fixed-size open-addressed array, fully allocated at
// construction: a dense slot array holding the live entries (insertion
// order, swap-with-last eviction) plus a power-of-two linear-probe index
// mapping (pid, gva_page) -> slot. The steady-state hit path performs no
// heap allocation (pinned by the gbench perf harness), and the
// pseudo-random victim selection is byte-for-byte the sequence the previous
// map+vector implementation produced, so every virtual-time output is
// unchanged. PID and GVA are stored at full width — the old packed
// `pid << 40` key silently aliased PIDs >= 2^24 (and GVAs >= 2^52, which
// the radix canonicality assert already forbids).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

struct TlbEntry {
  Gpa gpa_page = 0;  ///< granularity-aligned GPA base of the cached region.
  Hpa hpa_page = 0;  ///< granularity-aligned HPA base of the cached region.
  bool writable = false;  ///< effective write permission at fill time.
  bool dirty = false;     ///< guest-PTE and EPT dirty flags were set at fill.
  /// Cached translation granularity. A k2M entry is keyed by its 2 MiB-
  /// aligned base GVA and answers every page in the region (its bases are
  /// region bases; the MMU adds the in-region offset). Filled only when
  /// guest leaf AND EPT leaf are both >= the granularity, so base+offset
  /// arithmetic is valid across the whole region.
  PageGran gran = PageGran::k4K;
};

class Tlb {
 public:
  explicit Tlb(std::size_t capacity = 1536);

  /// Cached translation covering `gva_page`: the exact 4 KiB key first,
  /// then — only when huge entries exist at all — the 2 MiB / 1 GiB region
  /// bases. All-4K workloads never pay the extra probes.
  [[nodiscard]] TlbEntry* lookup(u32 pid, Gva gva_page) noexcept;
  void insert(u32 pid, Gva gva_page, const TlbEntry& entry);
  /// Drop the entry whose span covers `gva_page` (a huge entry covering the
  /// page is dropped whole, as INVLPG does).
  void invalidate_page(u32 pid, Gva gva_page) noexcept;
  /// Drop every entry overlapping the `gran`-sized region at `base` — the
  /// shootdown a huge-leaf unmap/split owes (a 2 MiB region may be cached
  /// as one huge entry, as 512 4 KiB entries, or any mix).
  void invalidate_region(u32 pid, Gva base, PageGran gran) noexcept;
  void flush_pid(u32 pid) noexcept;
  void flush_all() noexcept;

  /// Live entries with gran != k4K (guards the extra lookup probes).
  [[nodiscard]] std::size_t huge_entries() const noexcept { return huge_entries_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Bumped on every mutation (insert, eviction, invalidation, flush).
  /// Batched access paths memoise a looked-up entry pointer across
  /// consecutive same-page accesses and must drop the memo the moment the
  /// TLB changes underneath them (a scheduler service may flush mid-run).
  [[nodiscard]] u64 generation() const noexcept { return generation_; }

  /// Read-only visit of every cached translation as
  /// fn(pid, gva_page, const TlbEntry&); used by the coherence oracle to
  /// re-derive each entry from the authoritative tables.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(slots_[i].pid, slots_[i].gva_page, slots_[i].entry);
    }
  }

 private:
  friend struct ooh::snapshot::Access;

  struct Slot {
    u32 pid = 0;
    u32 bucket = 0;  ///< this slot's position in index_, kept in lockstep so
                     ///< eviction and flushing never re-probe.
    Gva gva_page = 0;
    TlbEntry entry;
  };
  static constexpr u32 kEmptyBucket = 0;  ///< index_ stores slot pos + 1.

  [[nodiscard]] std::size_t bucket_of(u32 pid, Gva gva_page) const noexcept;
  /// Probe for the bucket holding (pid, gva_page); returns the bucket index
  /// or SIZE_MAX when absent.
  [[nodiscard]] std::size_t find_bucket(u32 pid, Gva gva_page) const noexcept;
  void index_insert(u32 pid, Gva gva_page, std::size_t pos) noexcept;
  /// Remove bucket `b` with backward-shift deletion (no tombstones, so
  /// probe chains never degrade).
  void index_erase(std::size_t b) noexcept;
  void evict_at(std::size_t pos) noexcept;

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::size_t bucket_mask_ = 0;  ///< index_.size() - 1 (power of two).
  std::vector<Slot> slots_;      ///< dense live entries, [0, size_).
  std::vector<u32> index_;       ///< open-addressed (pid, gva) -> pos + 1.
  std::size_t huge_entries_ = 0;
  u64 generation_ = 0;
  u64 rand_state_ = 0x853c49e6748fea9bULL;  // deterministic victim choice
};

}  // namespace ooh::sim
