// Interfaces through which the simulated hardware calls software.
//
// The hypervisor implements VmExitHandler (runs in VMX root mode); the guest
// kernel implements GuestIrqSink (posted interrupts are delivered in VMX
// non-root mode without any exit -- the property EPML exploits).
#pragma once

#include "base/types.hpp"

namespace ooh::sim {

class Vcpu;

/// Hypercall numbers of the OoH para-virtual interface (paper §IV).
enum class Hypercall : u64 {
  kOohInitPml = 1,          ///< SPML: allocate/point PML buffer, share ring (M9).
  kOohDeactivatePml,        ///< SPML teardown (M11).
  kOohEnableLogging,        ///< SPML: tracked process scheduled in (M13).
  kOohDisableLogging,       ///< SPML: tracked scheduled out; flush buffer to ring (M14).
  kOohInitEpml,             ///< EPML: enable VMCS shadowing + guest PML field (M10).
  kOohDeactivateEpml,       ///< EPML teardown (M12).
  kOohIntervalReset,        ///< SPML: end of interval; re-arm consumed pages.
  kOohSppProtect,           ///< OoH-SPP: install a sub-page write mask (a0=gpa, a1=mask).
  kOohSppClear,             ///< OoH-SPP: remove the sub-page mask (a0=gpa).
};

class VmExitHandler {
 public:
  virtual ~VmExitHandler() = default;
  /// Hypervisor-level PML buffer is full; drain it and reset the index.
  virtual void on_pml_full(Vcpu& vcpu) = 0;
  /// No EPT mapping for `gpa`; back-fill it (demand allocation of host RAM).
  virtual void on_ept_violation(Vcpu& vcpu, Gpa gpa, bool is_write) = 0;
  /// Guest-initiated hypercall (vmcall); returns a status/result value.
  virtual u64 on_hypercall(Vcpu& vcpu, Hypercall nr, u64 a0, u64 a1) = 0;
};

class GuestIrqSink {
 public:
  virtual ~GuestIrqSink() = default;
  /// EPML: guest-level PML buffer full, delivered as a posted self-IPI.
  virtual void on_guest_pml_full(Vcpu& vcpu) = 0;
};

}  // namespace ooh::sim
