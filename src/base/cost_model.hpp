// Calibrated latencies of every simulated primitive.
//
// The *mechanisms* of the simulation (which faults, VM-exits, hypercalls,
// vmwrites, buffer copies occur, and how many) are produced by the machine
// model; this struct only supplies the unit latency of each primitive.
// Size-independent constants are taken verbatim from the paper's Table V(a)
// (metric ids M1..M18 kept in the field comments); size-dependent primitives
// are log-log interpolations of Table V(b)'s seven calibration points.
//
// CostModel is a plain value type so tests can substitute synthetic models
// and verify mechanism behaviour independent of calibration.
#pragma once

#include "base/interp.hpp"
#include "base/types.hpp"

namespace ooh {

struct CostModel {
  // ---- Table V(a): size-independent costs, microseconds -------------------
  double ctx_switch_us = 0.315;            ///< M1: user<->kernel context switch.
  double ioctl_init_pml_us = 5651.0;       ///< M3: ioctl PML init (SPML & EPML).
  double ioctl_deactivate_pml_us = 2816.0; ///< M4: ioctl PML deactivate.
  double vmread_us = 0.936;                ///< M7: vmread from guest mode (EPML).
  double vmwrite_us = 0.801;               ///< M8: vmwrite from guest mode (EPML).
  double hc_init_pml_us = 5495.0;          ///< M9: hypercall PML init (SPML).
  double hc_init_pml_shadow_us = 5878.0;   ///< M10: M9 + VMCS-shadowing init (EPML).
  double hc_deact_pml_us = 2060.0;         ///< M11: hypercall PML deactivate (SPML).
  double hc_deact_pml_shadow_us = 2755.0;  ///< M12: M11 + shadowing teardown (EPML).
  double hc_enable_logging_us = 0.3;       ///< M13: enable_logging hypercall (SPML).

  // ---- Documented assumptions (not itemised in Table V) -------------------
  double vmexit_us = 1.5;          ///< bare VM-exit + VM-entry round trip.
  double self_ipi_us = 0.5;        ///< posted-interrupt delivery, no VM-exit.
  double demand_fault_us = 1.0;    ///< first-touch minor fault (charged to all techniques alike).
  double ept_violation_us = 2.0;   ///< EPT violation exit + hypervisor backfill.
  double tlb_flush_us = 2.0;       ///< full TLB flush on one vCPU (INVEPT-style).
  /// Remote TLB shootdown: IPI send + remote invalidation + ack wait, charged
  /// per remote vCPU in the process's mm_cpumask. Hardware Translation
  /// Coherence for Virtualized Systems reports low-single-digit us per
  /// shootdown round trip under virtualization.
  double tlb_shootdown_us = 1.3;
  double disk_write_page_us = 3.0; ///< CRIU image write, per 4KiB page.
  /// Per simulated word access (write_u64/touch): page-stride accesses miss
  /// the cache on real hardware, so this models compute + a DRAM touch.
  double workload_write_ns = 100.0;
  /// Per word of a bulk transfer (write_bytes/read_bytes): sequential
  /// streams amortise misses across the cache line.
  double workload_bulk_word_ns = 2.0;
  double irq_dispatch_us = 0.2;    ///< guest IRQ table dispatch (self-IPI handler entry).
  double tlb_hit_ns = 1.0;         ///< translation served from the TLB.
  double guest_walk_ns = 50.0;     ///< 4-level guest page-table walk.
  double ept_walk_ns = 80.0;       ///< 4-level EPT walk (nested walk is pricier).
  double pml_log_ns = 15.0;        ///< hardware store of one PML entry.
  double dbit_clear_ns = 10.0;     ///< clearing one dirty flag during buffer drain.
  double drain_entry_ns = 20.0;    ///< moving one logged entry out of a PML buffer.
  double migration_send_page_us = 4.0;  ///< live-migration page transfer (10GbE-ish).
  double spp_violation_us = 2.5;   ///< SPP-violation exit + virtual #PF injection.
  double swap_in_page_us = 5.0;    ///< major fault: read one page from swap.
  double hc_spp_protect_us = 1.2;  ///< hypercall installing one sub-page mask.
  /// Eager page splitting: shattering one huge EPT leaf into 512 children
  /// (allocate a page-table page, fill 512 entries, one INVEPT amortised by
  /// the session-start flush). KVM's tdp_mmu split path is a low-single-
  /// digit-microsecond operation per 2 MiB leaf.
  double ept_split_leaf_us = 2.0;
  /// Adaptive control plane (ROADMAP item 3): WssEstimator bookkeeping per
  /// observed page (hash-set insert + EWMA arithmetic, userspace).
  double wss_estimator_update_ns = 25.0;
  /// PolicyEngine backend handoff: the decision + switch bookkeeping. The
  /// retiring/arming backends charge their own teardown/init on top.
  double policy_switch_us = 0.5;

  // ---- Table V(b): size-dependent totals, x = tracked bytes, y = us -------
  LogLogInterp m5_pfh_kernel;      ///< kernel-space #PF handling, total per full pass.
  LogLogInterp m6_pfh_user;        ///< userspace (ufd) #PF handling, total per full pass.
  LogLogInterp m14_disable_logging;///< SPML disable_logging hypercall, per call.
  LogLogInterp m15_clear_refs;     ///< echo 4 > clear_refs, per call.
  LogLogInterp m16_pt_walk_user;   ///< userspace pagemap scan, per full scan.
  LogLogInterp m17_reverse_map;    ///< SPML GPA->GVA reverse mapping, total per full pass.
  LogLogInterp m18_rb_copy;        ///< ring-buffer copy, total per full pass.

  /// The model with all Table V numbers installed.
  [[nodiscard]] static CostModel paper_calibrated();

  /// A unit-cost model for mechanism tests: every primitive costs 1us and
  /// size-dependent metrics are flat, so event counts equal microseconds.
  [[nodiscard]] static CostModel unit();

  // ---- Per-event helpers (mem = tracked process memory in bytes) ----------
  [[nodiscard]] double pfh_kernel_per_fault_us(u64 mem_bytes) const;
  [[nodiscard]] double pfh_user_per_fault_us(u64 mem_bytes) const;
  [[nodiscard]] double clear_refs_us(u64 mem_bytes) const;
  [[nodiscard]] double pagemap_scan_us(u64 mem_bytes) const;
  [[nodiscard]] double reverse_map_per_page_us(u64 mem_bytes) const;
  [[nodiscard]] double rb_copy_per_entry_us(u64 mem_bytes) const;
  [[nodiscard]] double spml_disable_logging_us(u64 mem_bytes) const;
  /// M2: ufd write-protect/register ioctl. Table V(a) marks it size-dependent
  /// without listing values; it parses the range's PTEs like clear_refs does,
  /// so we model it as one clear_refs-shaped pass (documented assumption).
  [[nodiscard]] double ufd_write_protect_us(u64 mem_bytes) const;
};

}  // namespace ooh
