file(REMOVE_RECURSE
  "../bench/ablation_wss"
  "../bench/ablation_wss.pdb"
  "CMakeFiles/ablation_wss.dir/ablation_wss.cpp.o"
  "CMakeFiles/ablation_wss.dir/ablation_wss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
