file(REMOVE_RECURSE
  "libooh_lib.a"
)
