// Pre-copy live migration driven by PML -- the feature's original purpose
// (§II-B) and the hypervisor-side user that OoH's coexistence flags protect.
//
// The engine alternates "run the guest a bit" with "harvest dirty GPAs and
// resend them", converging when the dirty set falls under the stop-and-copy
// threshold. It exercises enabled_by_hyp concurrently with a guest's SPML
// session in tests and in the live_migration example.
#pragma once

#include <functional>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "hypervisor/hypervisor.hpp"

namespace ooh::hv {

struct MigrationOptions {
  unsigned max_rounds = 30;
  /// Stop-and-copy when the last round dirtied at most this many pages.
  u64 stop_copy_threshold_pages = 64;
  /// Give up a transfer after this many failed attempts (injected faults).
  unsigned send_retry_limit = 3;
  /// Backoff before the first retry; doubles per attempt (exponential).
  double retry_backoff_us = 200.0;
  /// Models the guest running between the final pre-copy harvest and the
  /// vCPU pause (the drain window). Writes made here land in the PML
  /// buffer/dirty log and must appear in the stop-and-copy set.
  std::function<void()> drain_window_body;
  /// Concurrent userspace drain: while each guest quantum runs, one host
  /// drainer thread per vCPU pops that vCPU's dirty ring
  /// (Hypervisor::drain_dirty_ring) instead of leaving every entry for the
  /// round-boundary harvest. The quiescent harvest folds the drained set
  /// back in (Vm::drained_log), so rounds, pages_sent, downtime and all
  /// virtual-time results are bit-identical with the flag on or off — the
  /// difference is host-side: ring occupancy stays low and the harvest
  /// pause shrinks (MigrationReport::ring_drained counts the overlap).
  bool concurrent_ring_drain = false;

  // ---- adaptive convergence control (inert unless enabled) ------------------
  /// Drive the pre-copy loop with a ConvergencePredictor: compare each
  /// round's smoothed dirty rate against the transport's send bandwidth,
  /// throttle the guest while pre-copy cannot converge, and cut the loop
  /// short (auto-sizing max_rounds down) once non-convergence is sustained
  /// — instead of burning all max_rounds resending the same hot set.
  bool adaptive_convergence = false;
  /// Rounds the predictor observes before it may act (the EWMA needs data).
  unsigned predictor_warmup_rounds = 2;
  /// Consecutive non-convergent verdicts (after warmup) before the forced
  /// stop-and-copy cutoff.
  unsigned predictor_patience = 2;
  /// Fraction of each non-convergent round's duration charged to the guest
  /// as a throttle stall (QEMU auto-converge style). 0 disables throttling.
  double throttle_fraction = 0.3;
};

struct MigrationReport {
  unsigned rounds = 0;
  u64 pages_sent = 0;          ///< total, across all rounds + stop-and-copy.
  u64 initial_pages = 0;       ///< pages in the first full copy.
  u64 stop_copy_pages = 0;     ///< pages re-sent while the VM was paused.
  u64 send_retries = 0;        ///< transfer attempts that failed and backed off.
  u64 ring_drained = 0;        ///< ring entries popped by concurrent drainers.
  bool converged = false;      ///< dirty rate fell under the threshold.
  bool aborted = false;        ///< a transfer kept failing; migration gave up.
  VirtDuration total_time{0};
  VirtDuration downtime{0};    ///< stop-and-copy duration (VM paused).
  // ---- adaptive convergence control (zero/false unless enabled) -------------
  u64 throttled_rounds = 0;    ///< rounds the guest was throttle-stalled.
  bool predicted_nonconvergent = false;  ///< predictor forced the cutoff.
  double predicted_dirty_rate = 0.0;     ///< final smoothed rate, pages/virtual-ms.
};

class MigrationEngine {
 public:
  explicit MigrationEngine(Hypervisor& hv) : hv_(hv) {}

  /// Migrate `vm`, calling `run_guest_quantum` between pre-copy rounds to
  /// model the still-running guest dirtying memory.
  MigrationReport migrate(Vm& vm, const std::function<void()>& run_guest_quantum,
                          const MigrationOptions& opts = {});

 private:
  /// One transfer attempt with bounded retry/backoff under injected send
  /// faults. False when the retry budget is exhausted (caller aborts or
  /// carries the set into the next round).
  bool send_pages(sim::ExecContext& ctx, u64 count, const MigrationOptions& opts,
                  MigrationReport& rep);

  Hypervisor& hv_;
};

}  // namespace ooh::hv
