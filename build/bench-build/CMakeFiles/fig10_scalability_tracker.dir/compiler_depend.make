# Empty compiler generated dependencies file for fig10_scalability_tracker.
# This may be replaced when dependencies are built.
