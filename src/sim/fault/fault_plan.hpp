// Deterministic fault schedules (the "what and when" of fault injection).
//
// The paper's rare-event paths — PML buffer-full VM-exits, EPML posted
// self-IPIs, allocation failures, interrupted pre-copy rounds — only fire on
// adversarial schedules that happy-path workloads never produce. A FaultPlan
// is a declarative schedule of injection points keyed by per-vCPU *arrival
// counts* (the Nth time execution reaches the injection point), which makes
// it independent of wall-clock and host-thread interleaving: replaying the
// same plan against the same workload reproduces the same faults bit-for-bit
// (FAULT-1 in docs/invariants.md).
//
// Plans are data, not behaviour: the FaultInjector (injector.hpp) owns the
// mutable arrival/fire state. An empty plan is the no-fault case and must be
// indistinguishable from a build without any fault hooks.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "base/types.hpp"

namespace ooh::sim::fault {

/// Injection points wired through ExecContext::fault_fire. Each names one
/// hook site in the simulator; arrivals are counted per point, per vCPU.
enum class FaultPoint : std::size_t {
  kPmlForceFull = 0,    ///< hypervisor PML: report buffer-full at the current index.
  kEpmlForceFull,       ///< guest EPML: report buffer-full at the current index.
  kSelfIpiSuppress,     ///< drop the EPML posted self-IPI (arg = drops before redelivery).
  kGpaAllocFail,        ///< GuestKernel::alloc_gpa_frame throws (guest OOM).
  kFrameAllocFail,      ///< host frame allocation for the PML buffer throws.
  kWpProtectFail,       ///< wp tracker's initial write-protect pass fails.
  kMigrationSendFail,   ///< one migration send_pages call fails (retry/backoff).
  kDirtyRingFull,       ///< per-vCPU dirty ring reports full; entry takes the spill path.
  kCount
};

inline constexpr std::size_t kFaultPointCount =
    static_cast<std::size_t>(FaultPoint::kCount);

[[nodiscard]] std::string_view fault_point_name(FaultPoint p) noexcept;

/// One scheduled fault: fire at arrival `first` (0-based), then every `every`
/// arrivals after that (0 = fire once), at most `limit` times (0 = no cap).
/// `arg` is a point-specific payload (e.g. self-IPI drop count).
struct FaultRule {
  FaultPoint point = FaultPoint::kCount;
  u64 first = 0;
  u64 every = 0;
  u64 limit = 1;
  u64 arg = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultRule rule) {
    rules_.push_back(rule);
    return *this;
  }

  [[nodiscard]] const std::vector<FaultRule>& rules() const noexcept { return rules_; }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] u64 seed() const noexcept { return seed_; }

  /// Derive a pseudo-random but fully deterministic plan from `seed` using
  /// SplitMix64: same seed => same rules => same replayed faults. Every
  /// injection point gets at least one rule so a seeded sweep exercises the
  /// whole fault surface.
  [[nodiscard]] static FaultPlan from_seed(u64 seed);

 private:
  std::vector<FaultRule> rules_;
  u64 seed_ = 0;
};

}  // namespace ooh::sim::fault
