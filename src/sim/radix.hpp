// Four-level radix table over the x86-64 48-bit address split
// (9 + 9 + 9 + 9 index bits above the 12-bit page offset).
//
// Shared by the guest page table (GVA -> GPA) and the EPT (GPA -> HPA);
// only the leaf entry type differs. Interior nodes are allocated lazily so a
// sparse 1.5 GiB mapping costs a few thousand nodes.
//
// All nodes come from a per-table monotonic arena (base/arena.hpp): leaves
// are never freed individually (unmap zeroes entries in place), so the only
// deallocation point is clear()/destruction, which rewinds the arena
// wholesale. Raw `new`/`delete` of node types outside the arena is forbidden
// (lint rule radix-node-allocation) — it would reintroduce per-node heap
// traffic the steady-state allocs_per_op == 0 benchmarks pin down.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>

#include "base/arena.hpp"
#include "base/types.hpp"

namespace ooh::sim {

inline constexpr unsigned kRadixBits = 9;
inline constexpr std::size_t kRadixFanout = std::size_t{1} << kRadixBits;  // 512

/// Only bits 47:12 participate in the 9+9+9+9 split: an address with bits
/// set above 47 would silently alias a canonical one.
[[nodiscard]] constexpr bool radix_canonical(u64 addr) noexcept {
  return (addr >> 48) == 0;
}

[[nodiscard]] constexpr std::size_t radix_index(u64 addr, unsigned level) noexcept {
  // level 3 = top (bits 47:39) ... level 0 = leaf (bits 20:12).
  return (addr >> (kPageShift + kRadixBits * level)) & (kRadixFanout - 1);
}

template <typename EntryT>
class RadixTable4 {
 public:
  RadixTable4() = default;
  // Nodes hold raw arena pointers; copying or moving the table would alias
  // or orphan them, and no call site needs either.
  RadixTable4(const RadixTable4&) = delete;
  RadixTable4& operator=(const RadixTable4&) = delete;

  /// Pointer to the leaf entry for `addr`, or nullptr if any interior node
  /// on the path is absent. Never allocates.
  ///
  /// A one-entry MRU paging-structure cache (the simulator's analogue of
  /// the hardware PDE/PDPTE caches) memoises the last leaf reached: a
  /// streaming access pattern resolves its next same-2MB-region walk with
  /// one tag compare instead of three pointer chases. The cache holds only
  /// the leaf *pointer* — entry flags are always re-read through it, and
  /// leaves are never freed (unmap zeroes entries in place), so a memoised
  /// pointer cannot dangle. Coherence is audited as WALK-1
  /// (docs/invariants.md) and the cache is dropped on structural
  /// invalidation points (see invalidate_walk_cache()).
  [[nodiscard]] EntryT* find(u64 addr) noexcept {
    assert(radix_canonical(addr) && "address beyond the 48-bit split aliases");
    const u64 tag = addr >> (kPageShift + kRadixBits);
    if (mru_leaf_ != nullptr && mru_tag_ == tag) {
      return &mru_leaf_->entries[radix_index(addr, 0)];
    }
    L2* l2 = root_.children[radix_index(addr, 3)];
    if (l2 == nullptr) return nullptr;
    L1* l1 = l2->children[radix_index(addr, 2)];
    if (l1 == nullptr) return nullptr;
    Leaf* leaf = l1->children[radix_index(addr, 1)];
    if (leaf == nullptr) return nullptr;
    mru_leaf_ = leaf;
    mru_tag_ = tag;
    return &leaf->entries[radix_index(addr, 0)];
  }
  [[nodiscard]] const EntryT* find(u64 addr) const noexcept {
    return const_cast<RadixTable4*>(this)->find(addr);
  }

  /// Leaf entry for `addr`, allocating interior nodes as needed.
  [[nodiscard]] EntryT& ensure(u64 addr) {
    assert(radix_canonical(addr) && "address beyond the 48-bit split aliases");
    const u64 tag = addr >> (kPageShift + kRadixBits);
    if (mru_leaf_ != nullptr && mru_tag_ == tag) {
      return mru_leaf_->entries[radix_index(addr, 0)];
    }
    L2*& l2 = root_.children[radix_index(addr, 3)];
    if (l2 == nullptr) l2 = arena_.create<L2>();
    L1*& l1 = l2->children[radix_index(addr, 2)];
    if (l1 == nullptr) l1 = arena_.create<L1>();
    Leaf*& leaf = l1->children[radix_index(addr, 1)];
    if (leaf == nullptr) {
      leaf = arena_.create<Leaf>();
      ++leaf_count_;
    }
    mru_leaf_ = leaf;
    mru_tag_ = tag;
    return leaf->entries[radix_index(addr, 0)];
  }

  /// Drop every node and rewind the arena (blocks are kept warm for
  /// reuse). The snapshot-restore path rebuilds tables through this instead
  /// of destroying and reconstructing the owning object graph.
  void clear() noexcept {
    root_ = L3{};
    leaf_count_ = 0;
    huge_slabs_ = 0;
    mru_leaf_ = nullptr;
    mru_tag_ = 0;
    arena_.reset();
  }

  /// Drop the MRU walk cache. Called at the structural invalidation points
  /// (unmap paths), mirroring where the TLB is invalidated; see the "hot
  /// path" section of docs/architecture.md for why flag-only mutations need
  /// no invalidation (the leaf is re-read on every walk).
  void invalidate_walk_cache() const noexcept { mru_leaf_ = nullptr; }

  /// WALK-1: the memoised leaf must be exactly what a full walk of the
  /// memoised tag reaches. True when the cache is empty.
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    if (mru_leaf_ == nullptr) return true;
    const u64 addr = mru_tag_ << (kPageShift + kRadixBits);
    const L2* l2 = root_.children[radix_index(addr, 3)];
    if (l2 == nullptr) return false;
    const L1* l1 = l2->children[radix_index(addr, 2)];
    if (l1 == nullptr) return false;
    return l1->children[radix_index(addr, 1)] == mru_leaf_;
  }

  /// Test-only corruption hook for the coherence oracle's mutation
  /// self-test: re-tags the cached leaf so it no longer matches a real walk.
  void debug_skew_walk_cache() noexcept { mru_tag_ ^= u64{1} << 20; }

  /// Visit every entry in existing leaves as fn(page_base_addr, EntryT&).
  /// Visits entries whether or not they are "present"; callers filter.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i3 = 0; i3 < kRadixFanout; ++i3) {
      L2* l2 = root_.children[i3];
      if (l2 == nullptr) continue;
      for (std::size_t i2 = 0; i2 < kRadixFanout; ++i2) {
        L1* l1 = l2->children[i2];
        if (l1 == nullptr) continue;
        for (std::size_t i1 = 0; i1 < kRadixFanout; ++i1) {
          Leaf* leaf = l1->children[i1];
          if (leaf == nullptr) continue;
          for (std::size_t i0 = 0; i0 < kRadixFanout; ++i0) {
            const u64 addr = ((static_cast<u64>(i3) << (kRadixBits * 3)) |
                              (static_cast<u64>(i2) << (kRadixBits * 2)) |
                              (static_cast<u64>(i1) << kRadixBits) | static_cast<u64>(i0))
                             << kPageShift;
            fn(addr, leaf->entries[i0]);
          }
        }
      }
    }
  }

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Bytes reserved by the node arena (growth diagnostic; benchmarks assert
  /// it stays flat across steady-state iterations).
  [[nodiscard]] std::size_t arena_reserved_bytes() const noexcept {
    return arena_.reserved_bytes();
  }

  // ---- PS-bit (huge) leaves -------------------------------------------------
  // A leaf may sit one level up (2 MiB, stored beside an L1's children) or
  // two (1 GiB, beside an L2's). The walk checks huge slots top-down before
  // descending, exactly like hardware honours the PS bit, so a present huge
  // leaf shadows any (necessarily non-present, GRAN-1) 4 KiB entries below
  // it. EntryT needs a `present` member for these paths; tables that never
  // call them (plain RadixTable4<u64> benches) never instantiate it.

  /// True once any huge slab has been allocated: the fast guard that keeps
  /// the all-4K walk byte-identical to the pre-huge-page code.
  [[nodiscard]] bool has_huge() const noexcept { return huge_slabs_ != 0; }

  /// Top-down walk honouring PS bits: returns the present huge leaf
  /// covering `addr` (setting `gran`), else the 4 KiB entry from find()
  /// (gran = k4K; may be null or non-present).
  [[nodiscard]] EntryT* find_leaf(u64 addr, PageGran& gran) noexcept {
    if (huge_slabs_ != 0) {
      L2* l2 = root_.children[radix_index(addr, 3)];
      if (l2 != nullptr) {
        if (l2->huge != nullptr) {
          EntryT& e = (*l2->huge)[radix_index(addr, 2)];
          if (e.present) {
            gran = PageGran::k1G;
            return &e;
          }
        }
        L1* l1 = l2->children[radix_index(addr, 2)];
        if (l1 != nullptr && l1->huge != nullptr) {
          EntryT& e = (*l1->huge)[radix_index(addr, 1)];
          if (e.present) {
            gran = PageGran::k2M;
            return &e;
          }
        }
      }
    }
    gran = PageGran::k4K;
    return find(addr);
  }
  [[nodiscard]] const EntryT* find_leaf(u64 addr, PageGran& gran) const noexcept {
    return const_cast<RadixTable4*>(this)->find_leaf(addr, gran);
  }

  /// Huge-leaf slot covering `addr` at exactly granularity `g`, allocating
  /// the slab (and interior nodes) as needed. The caller owns present-ness
  /// and overlap discipline (GRAN-1).
  [[nodiscard]] EntryT& ensure_huge(u64 addr, PageGran g) {
    assert(radix_canonical(addr) && "address beyond the 48-bit split aliases");
    assert(g != PageGran::k4K && "use ensure() for base pages");
    L2*& l2 = root_.children[radix_index(addr, 3)];
    if (l2 == nullptr) l2 = arena_.create<L2>();
    if (g == PageGran::k1G) {
      if (l2->huge == nullptr) {
        l2->huge = arena_.create<HugeSlab>();
        ++huge_slabs_;
      }
      return (*l2->huge)[radix_index(addr, 2)];
    }
    L1*& l1 = l2->children[radix_index(addr, 2)];
    if (l1 == nullptr) l1 = arena_.create<L1>();
    if (l1->huge == nullptr) {
      l1->huge = arena_.create<HugeSlab>();
      ++huge_slabs_;
    }
    return (*l1->huge)[radix_index(addr, 1)];
  }

  /// Huge-leaf slot for `addr` at exactly granularity `g`, or nullptr when
  /// no slab exists there. Never allocates; no present check.
  [[nodiscard]] EntryT* find_huge(u64 addr, PageGran g) noexcept {
    if (huge_slabs_ == 0) return nullptr;
    L2* l2 = root_.children[radix_index(addr, 3)];
    if (l2 == nullptr) return nullptr;
    if (g == PageGran::k1G) {
      return l2->huge != nullptr ? &(*l2->huge)[radix_index(addr, 2)] : nullptr;
    }
    L1* l1 = l2->children[radix_index(addr, 2)];
    if (l1 == nullptr || l1->huge == nullptr) return nullptr;
    return &(*l1->huge)[radix_index(addr, 1)];
  }

  /// Visit every entry of every granularity as fn(base_addr, EntryT&, gran):
  /// 1 GiB slabs, then 2 MiB slabs, then the 4 KiB leaves. Like for_each,
  /// non-present entries are visited too; callers filter.
  template <typename Fn>
  void for_each_leaf(Fn&& fn) {
    if (huge_slabs_ != 0) {
      for (std::size_t i3 = 0; i3 < kRadixFanout; ++i3) {
        L2* l2 = root_.children[i3];
        if (l2 == nullptr) continue;
        if (l2->huge != nullptr) {
          for (std::size_t i2 = 0; i2 < kRadixFanout; ++i2) {
            const u64 addr = ((static_cast<u64>(i3) << kRadixBits) | i2)
                             << gran_shift(PageGran::k1G);
            fn(addr, (*l2->huge)[i2], PageGran::k1G);
          }
        }
        for (std::size_t i2 = 0; i2 < kRadixFanout; ++i2) {
          L1* l1 = l2->children[i2];
          if (l1 == nullptr || l1->huge == nullptr) continue;
          for (std::size_t i1 = 0; i1 < kRadixFanout; ++i1) {
            const u64 addr = ((static_cast<u64>(i3) << (kRadixBits * 2)) |
                              (static_cast<u64>(i2) << kRadixBits) | i1)
                             << gran_shift(PageGran::k2M);
            fn(addr, (*l1->huge)[i1], PageGran::k2M);
          }
        }
      }
    }
    for_each([&fn](u64 addr, EntryT& e) { fn(addr, e, PageGran::k4K); });
  }

 private:
  struct Leaf {
    std::array<EntryT, kRadixFanout> entries{};
  };
  using HugeSlab = std::array<EntryT, kRadixFanout>;
  struct L1 {
    std::array<Leaf*, kRadixFanout> children{};
    // PS-bit leaves: slot i is a 2 MiB leaf entry covering the same span as
    // children[i]'s whole 4 KiB leaf. Allocated lazily on first huge map so
    // all-4K tables never pay for it.
    HugeSlab* huge = nullptr;
  };
  struct L2 {
    std::array<L1*, kRadixFanout> children{};
    HugeSlab* huge = nullptr;  ///< 1 GiB PS-bit leaves.
  };
  struct L3 {
    std::array<L2*, kRadixFanout> children{};
  };
  base::Arena arena_;  ///< owns every node below root_.
  L3 root_;
  std::size_t leaf_count_ = 0;
  std::size_t huge_slabs_ = 0;  ///< allocated huge slabs; never shrinks.
  // MRU walk cache: mutable so const find() can refresh it. Each table is
  // owned by exactly one VM timeline (like the TLB), so there is no
  // cross-thread access to guard.
  mutable Leaf* mru_leaf_ = nullptr;
  mutable u64 mru_tag_ = 0;
};

}  // namespace ooh::sim
