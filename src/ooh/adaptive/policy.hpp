// PolicyEngine — the deciding half of the adaptive tracking control plane.
//
// Consumes the WssEstimator's smoothed dirty-rate signal and picks the
// DirtyTracker backend for the *next* interval: a write-heavy phase wants
// EPML (per-write logging is cheap, collection is a ring read), a cold
// phase wants write-protection or /proc (no standing PML session; the few
// writes each pay a fault). The engine is a pure deterministic function of
// the signal plus its own hysteresis state — same seed, same decisions —
// and the switch itself is carried out by AdaptiveTracker at the interval
// boundary (the quiescent point), under the POL-1 invariant.
#pragma once

#include "ooh/adaptive/wss_estimator.hpp"
#include "ooh/tracker.hpp"

namespace ooh::lib {

struct PolicyConfig {
  /// Backend for write-heavy phases.
  Technique hot = Technique::kEpml;
  /// Backend for cold phases.
  Technique cold = Technique::kWp;
  /// Switch hot -> cold when the smoothed dirty rate falls below this
  /// (pages per virtual millisecond)...
  double cold_rate_threshold = 0.05;
  /// ...and cold -> hot when it rises above this. The gap is the
  /// hysteresis band: a rate inside it keeps the current backend.
  double hot_rate_threshold = 0.5;
  /// Windows to observe before the first decision (the EWMA needs data).
  u64 warmup_windows = 1;
  /// Minimum windows between two switches (flap damping).
  u64 min_windows_between_switches = 2;
};

class PolicyEngine {
 public:
  explicit PolicyEngine(const PolicyConfig& cfg = {}) : cfg_(cfg) {}

  /// The backend the next interval should run on. `current` is returned
  /// whenever the signal is still warming up, sits inside the hysteresis
  /// band, or a switch happened too recently.
  [[nodiscard]] Technique decide(const WssSignal& sig, Technique current);

  [[nodiscard]] const PolicyConfig& config() const noexcept { return cfg_; }
  /// Decisions that changed the backend.
  [[nodiscard]] u64 switches() const noexcept { return switches_; }

 private:
  PolicyConfig cfg_;
  u64 switches_ = 0;
  u64 last_switch_window_ = 0;
};

}  // namespace ooh::lib
