// Analytical-model tests: Formulas 1-4 must predict the simulator's
// measured tracker/tracked times from event counts alone -- the paper's
// Table IV validation reports >=96% accuracy for E(C_tker) and ~99% for
// E(C_tked_tker).
#include <gtest/gtest.h>

#include "model/formulas.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::model {
namespace {

using lib::Technique;

struct Measured {
  double tracker_us;
  double tracked_us;
  double ideal_us;
  ModelParams params;
};

Measured run_and_measure(Technique t, u64 pages, int passes) {
  // Ideal (untracked) time first, in a fresh bed.
  auto baseline = [&] {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    const Gva base = proc.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
    return lib::run_baseline(k, proc, [&](guest::Process& p) {
      for (int r = 0; r < passes; ++r) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      }
    });
  }();

  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  auto tracker = lib::make_tracker(t, k, proc);
  lib::RunOptions opts;
  opts.collect_period = baseline.tracked_time * 0.75;
  opts.max_collections = 1;
  opts.final_collect = false;  // keep the event window == the tracked window
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (int rep = 0; rep < passes; ++rep) {
          for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
        }
      },
      tracker.get(), opts);
  tracker->shutdown();

  Measured m;
  m.tracker_us = r.tracker_time().count() - r.phases.init.count();
  m.tracked_us = r.tracked_time.count();
  m.ideal_us = baseline.tracked_time.count();
  m.params = params_from_events(t, proc.mapped_bytes(), r.events);
  return m;
}

class FormulaAccuracy : public ::testing::TestWithParam<Technique> {};

TEST_P(FormulaAccuracy, TrackerEstimateWithin20Percent) {
  const Technique t = GetParam();
  const Measured m = run_and_measure(t, (32 * kMiB) / kPageSize, 2);
  const Estimate e =
      estimate(t, m.params, CostModel::paper_calibrated());
  // E(C_p) is empty in this experiment (paper §III), so E(C_tker) = E(C_x).
  const double est = e.tracker_us(0.0);
  ASSERT_GT(m.tracker_us, 0.0);
  EXPECT_GE(accuracy_pct(est, m.tracker_us), 80.0)
      << "estimated " << est << "us vs measured " << m.tracker_us << "us";
}

TEST_P(FormulaAccuracy, TrackedEstimateWithin10Percent) {
  const Technique t = GetParam();
  const Measured m = run_and_measure(t, (32 * kMiB) / kPageSize, 2);
  const Estimate e =
      estimate(t, m.params, CostModel::paper_calibrated());
  const double est = e.tracked_us(m.ideal_us, 0.0) + m.tracker_us - e.tracker_us(0.0);
  EXPECT_GE(accuracy_pct(e.tracked_us(m.ideal_us, 0.0), m.tracked_us), 85.0)
      << "estimated " << e.tracked_us(m.ideal_us, 0.0) << "us vs measured "
      << m.tracked_us << "us";
  (void)est;
}

INSTANTIATE_TEST_SUITE_P(Techniques, FormulaAccuracy,
                         ::testing::Values(Technique::kProc, Technique::kUfd,
                                           Technique::kSpml, Technique::kEpml),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Technique::kProc: return "proc";
                             case Technique::kUfd: return "ufd";
                             case Technique::kSpml: return "spml";
                             case Technique::kEpml: return "epml";
                             default: return "other";
                           }
                         });

TEST(Formulas, OracleCostsNothing) {
  const Estimate e = estimate(Technique::kOracle, {}, CostModel::paper_calibrated());
  EXPECT_EQ(e.technique_us, 0.0);
  EXPECT_EQ(e.impact_us, 0.0);
  EXPECT_EQ(e.tracked_us(100.0, 5.0), 105.0);
}

TEST(Formulas, EpmlTechniqueCostIsSizeInsensitive) {
  // Table VI: only M18 depends on tracked memory for EPML, and it is tiny.
  const CostModel cm = CostModel::paper_calibrated();
  ModelParams p;
  p.intervals = 4;
  p.dirty_pages = 1000;
  p.n_ctx_switches = 10;
  p.mem_bytes = 10 * kMiB;
  const double small = estimate(Technique::kEpml, p, cm).technique_us;
  p.mem_bytes = kGiB;
  const double large = estimate(Technique::kEpml, p, cm).technique_us;
  EXPECT_LT(large / small, 1.5);
}

TEST(Formulas, SpmlTechniqueCostGrowsSuperlinearly) {
  const CostModel cm = CostModel::paper_calibrated();
  ModelParams p;
  p.intervals = 1;
  p.n_ctx_switches = 2;
  p.mem_bytes = 10 * kMiB;
  p.dirty_pages = pages_for_bytes(p.mem_bytes);
  const double small = estimate(Technique::kSpml, p, cm).technique_us;
  p.mem_bytes = kGiB;
  p.dirty_pages = pages_for_bytes(p.mem_bytes);
  const double large = estimate(Technique::kSpml, p, cm).technique_us;
  EXPECT_GT(large / small, 100.0) << "102x memory -> far more than 102x cost";
}

TEST(Formulas, TechniqueOrderingAtScale) {
  // With a full-GB working set and one interval, Formula 2 must order the
  // techniques as the paper does: EPML << /proc < ufd/SPML.
  const CostModel cm = CostModel::paper_calibrated();
  ModelParams p;
  p.mem_bytes = kGiB;
  p.intervals = 1;
  p.dirty_pages = pages_for_bytes(kGiB);
  p.faults = pages_for_bytes(kGiB);
  p.n_ctx_switches = 4;
  const double proc_us = estimate(Technique::kProc, p, cm).technique_us;
  const double ufd_us = estimate(Technique::kUfd, p, cm).technique_us;
  const double spml_us = estimate(Technique::kSpml, p, cm).technique_us;
  const double epml_us = estimate(Technique::kEpml, p, cm).technique_us;
  EXPECT_LT(epml_us * 100, proc_us);
  EXPECT_LT(proc_us, ufd_us);
  EXPECT_LT(ufd_us, spml_us);
}

TEST(Formulas, AccuracyPctBehaves) {
  EXPECT_DOUBLE_EQ(accuracy_pct(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(accuracy_pct(90.0, 100.0), 90.0);
  EXPECT_DOUBLE_EQ(accuracy_pct(110.0, 100.0), 90.0);
  EXPECT_THROW((void)accuracy_pct(1.0, 0.0), std::invalid_argument);
}

TEST(Formulas, ParamsFromEventsPicksTechniqueFaults) {
  EventCounters ev;
  ev.add(Event::kPageFaultSoftDirty, 7);
  ev.add(Event::kPageFaultUffd, 9);
  ev.add(Event::kReverseMapLookup, 11);
  ev.add(Event::kRingBufFetchEntry, 13);
  ev.add(Event::kTrackerCollect, 2);
  EXPECT_EQ(params_from_events(Technique::kProc, kMiB, ev).faults, 7u);
  EXPECT_EQ(params_from_events(Technique::kUfd, kMiB, ev).faults, 9u);
  EXPECT_EQ(params_from_events(Technique::kSpml, kMiB, ev).dirty_pages, 11u);
  EXPECT_EQ(params_from_events(Technique::kEpml, kMiB, ev).rb_entries, 13u);
  EXPECT_EQ(params_from_events(Technique::kProc, kMiB, ev).intervals, 2u);
}

}  // namespace
}  // namespace ooh::model
