# Empty dependencies file for table4_formula_validation.
# This may be replaced when dependencies are built.
