// Workload tests: every Table III application instantiates, runs, dirties
// memory with its expected shape, and lands near the paper's footprint.
#include <gtest/gtest.h>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "workloads/gcbench.hpp"
#include "workloads/microbench.hpp"
#include "workloads/phoenix.hpp"
#include "workloads/registry.hpp"
#include "workloads/tkrzw.hpp"

namespace ooh::wl {
namespace {

struct Named {
  std::string_view app;
};

class WorkloadRuns : public ::testing::TestWithParam<std::string_view> {};

TEST_P(WorkloadRuns, SetupAndRunDirtiesMemory) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();

  auto w = make_workload(GetParam(), ConfigSize::kSmall, /*scale_divisor=*/64);
  std::unique_ptr<gc::GcHeap> heap;
  if (GetParam() == "GCBench") {
    heap = std::make_unique<gc::GcHeap>(k, proc, 64 * kMiB);
    w->attach_gc(heap.get());
  }
  w->setup(proc);
  proc.truth_reset();
  w->run(proc);
  EXPECT_GT(proc.truth_dirty().size(), 0u) << "workload must write memory";
  EXPECT_GT(k.ctx().clock.now().count(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadRuns,
                         ::testing::Values("array-parser", "GCBench", "histogram",
                                           "kmeans", "matrix-multiply", "pca",
                                           "string-match", "word-count", "baby",
                                           "cache", "stdhash", "stdtree", "tiny"),
                         [](const auto& pinfo) {
                           std::string s(pinfo.param);
                           for (char& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(Registry, Table3HasAll36Specs) {
  EXPECT_EQ(table3_specs().size(), 36u);
  EXPECT_EQ(phoenix_apps().size(), 6u);
  EXPECT_EQ(tkrzw_apps().size(), 5u);
  EXPECT_THROW((void)make_workload("nope", ConfigSize::kSmall), std::invalid_argument);
  EXPECT_THROW((void)paper_footprint_bytes("nope", ConfigSize::kSmall),
               std::invalid_argument);
}

TEST(Registry, FootprintsTrackTableIII) {
  // At scale 1 the declared workload footprint should be within 2x of the
  // paper's measured consumption (Table III) -- same order of magnitude,
  // since the paper measures RSS including allocator overheads.
  for (const WorkloadSpec& spec : table3_specs()) {
    const auto w = make_workload(spec.app, spec.size, /*scale_divisor=*/1);
    const double ours = static_cast<double>(w->footprint_bytes());
    const double paper = static_cast<double>(spec.paper_footprint_bytes);
    EXPECT_GT(ours, paper * 0.4) << spec.app << " " << static_cast<int>(spec.size);
    EXPECT_LT(ours, paper * 2.5) << spec.app << " " << static_cast<int>(spec.size);
  }
}

TEST(Registry, ScaleDivisorShrinksFootprint) {
  const auto full = make_workload("histogram", ConfigSize::kSmall, 1);
  const auto scaled = make_workload("histogram", ConfigSize::kSmall, 16);
  EXPECT_LT(scaled->footprint_bytes() * 8, full->footprint_bytes());
}

TEST(ArrayParserTest, WritesOneWordPerPagePerPass) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  ArrayParser w(64 * kPageSize, /*passes=*/2);
  w.setup(proc);
  proc.truth_reset();
  w.run(proc);
  EXPECT_EQ(proc.truth_dirty().size(), 64u);
}

TEST(DirtyProfiles, HistogramDirtiesFewPagesReadsMany) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = make_workload("histogram", ConfigSize::kSmall, 16);
  w->setup(proc);
  proc.truth_reset();
  w->run(proc);
  // Bins are 2 pages; the multi-MB input is only read.
  EXPECT_LT(proc.truth_dirty().size(), 8u);
  EXPECT_GT(k.ctx().counters.get(Event::kTlbHit) +
                k.ctx().counters.get(Event::kTlbMiss),
            proc.truth_dirty().size() * 100);
}

TEST(DirtyProfiles, TinyScattersWritesWidely) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = make_workload("tiny", ConfigSize::kSmall, 256);
  w->setup(proc);
  proc.truth_reset();
  w->run(proc);
  // The huge bucket array spreads dirty pages widely (>25% of footprint).
  const u64 total_pages = pages_for_bytes(proc.mapped_bytes());
  EXPECT_GT(proc.truth_dirty().size() * 4, total_pages);
}

TEST(DirtyProfiles, KmeansRedirtiesSamePagesEachIteration) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  Kmeans w(/*dims=*/64, /*clusters=*/16, /*points=*/512, /*iters=*/3);
  w.setup(proc);
  proc.truth_reset();
  w.run(proc);
  // Dirty set bounded by assignments + centroids, regardless of iterations.
  const u64 writable_pages =
      pages_for_bytes(512 * 8) + pages_for_bytes(16 * 64 * 4) + 2;
  EXPECT_LE(proc.truth_dirty().size(), writable_pages + 2);
}

TEST(GcBenchTest, RunsCollectionsAndFreesGarbage) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  gc::GcHeap heap(k, proc, 128 * kMiB, /*threshold=*/64 * 1024);
  GcBench bench(/*array_len=*/10'000, /*lived_depth=*/10, /*stretch_depth=*/12,
                /*work_divisor=*/4);
  bench.attach_gc(&heap);
  k.scheduler().enter_process(proc.pid());
  bench.run(proc);
  k.scheduler().exit_process(proc.pid());
  EXPECT_GT(heap.stats().cycle_count(), 2u);
  u64 freed = 0;
  for (const auto& c : heap.stats().cycles) freed += c.objects_freed;
  EXPECT_GT(freed, 1000u) << "short-lived trees must have been collected";
  bench.attach_gc(nullptr);
  EXPECT_THROW(bench.run(proc), std::logic_error)
      << "GCBench without a GC heap must refuse to run";
}

TEST(GcBenchTest, RequiresGcHeap) {
  lib::TestBed bed;
  guest::Process& proc = bed.kernel().create_process();
  GcBench bench(1000, 6, 8);
  EXPECT_THROW(bench.run(proc), std::logic_error);
}

TEST(KvEngines, RecordArenaGrowsWithIterations) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  BabyEngine w(/*iterations=*/5000, /*record_bytes=*/80);
  w.setup(proc);
  proc.truth_reset();
  w.run(proc);
  // 5000 x 80B of appends dirty at least 80 arena pages.
  EXPECT_GT(proc.truth_dirty().size(), 80u);
  EXPECT_EQ(w.iterations(), 5000u);
}

TEST(KvEngines, TrackableUnderEpml) {
  // End-to-end: a tkrzw engine tracked by EPML reports a complete dirty set.
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = make_workload("cache", ConfigSize::kSmall, 512);
  w->setup(proc);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  const lib::RunResult r = lib::run_tracked(k, proc, w->runner(), tracker.get());
  tracker->shutdown();
  EXPECT_EQ(r.captured_truth, r.truth_pages);
  EXPECT_GT(r.truth_pages, 0u);
}

}  // namespace
}  // namespace ooh::wl
