file(REMOVE_RECURSE
  "../bench/fig8_criu_checkpoint"
  "../bench/fig8_criu_checkpoint.pdb"
  "CMakeFiles/fig8_criu_checkpoint.dir/fig8_criu_checkpoint.cpp.o"
  "CMakeFiles/fig8_criu_checkpoint.dir/fig8_criu_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_criu_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
