// Epoch-parallel engine determinism pins (invariant EPOCH-1): virtual-time
// outputs are a pure function of the epoch bodies — worker count, real-time
// completion order (shuffled via the seeded stagger knob) and OS scheduling
// cannot leak one bit into them. Plus the record/replay seam proof: every
// epoch replayed independently from its boundary snapshot reproduces the
// recorded serial timeline byte-for-byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "ooh/epoch_run.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/epoch/epoch_pool.hpp"

namespace ooh::lib {
namespace {

TestBedOptions small_bed() {
  TestBedOptions opts;
  opts.host_mem_bytes = 2 * kGiB;
  opts.vm_mem_bytes = 256 * kMiB;
  return opts;
}

/// One self-contained figure cell: its own bed, a tracked run, and the
/// cell's virtual-time results rendered to the bytes a figure would emit.
std::string run_cell(std::size_t i) {
  TestBed bed(small_bed());
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 48 + (i % 3) * 16;
  const Gva base = proc.mmap(pages * kPageSize);
  const Technique tech = i % 2 == 0 ? Technique::kEpml : Technique::kProc;
  auto tracker = make_tracker(tech, k, proc);
  const RunResult r = run_tracked(
      k, proc,
      [=](guest::Process& p) {
        Rng rng(1000 + i);
        for (u64 n = 0; n < pages * 2; ++n) {
          p.touch_write(base + rng.below(pages) * kPageSize);
        }
      },
      tracker.get());
  tracker->shutdown();
  return std::to_string(r.tracked_time.count()) + "," +
         std::to_string(r.tracker_time().count()) + "," +
         std::to_string(r.unique_pages) + "," + std::to_string(r.dropped);
}

TEST(EpochPool, ParallelCellResultsBitIdenticalToSerial) {
  constexpr std::size_t kCells = 9;
  epoch::Options serial;
  serial.threads = 1;
  const std::vector<std::string> expect =
      epoch::EpochPool::map<std::string>(kCells, run_cell, serial);
  for (const unsigned threads : {2u, 4u, 8u}) {
    epoch::Options opt;
    opt.threads = threads;
    const auto got = epoch::EpochPool::map<std::string>(kCells, run_cell, opt);
    EXPECT_EQ(expect, got) << threads << " epoch workers diverged from serial";
  }
}

TEST(EpochPool, CompletionOrderShuffleCannotLeakIntoResults) {
  constexpr std::size_t kCells = 6;
  epoch::Options serial;
  serial.threads = 1;
  const auto expect = epoch::EpochPool::map<std::string>(kCells, run_cell, serial);
  for (const u64 seed : {u64{1}, u64{0xdead}, u64{0x5eed5eed}}) {
    epoch::Options opt;
    opt.threads = 4;
    opt.stagger_seed = seed;  // seeded yield storms permute real-time finish order
    const auto got = epoch::EpochPool::map<std::string>(kCells, run_cell, opt);
    EXPECT_EQ(expect, got) << "stagger seed " << seed << " leaked into results";
  }
}

TEST(EpochPool, FirstErrorByEpochIndexWinsDeterministically) {
  for (const unsigned threads : {1u, 4u}) {
    epoch::Options opt;
    opt.threads = threads;
    try {
      epoch::EpochPool::run_indexed(
          8,
          [](std::size_t i) {
            if (i % 3 == 2) throw std::runtime_error("epoch " + std::to_string(i));
          },
          opt);
      FAIL() << "no exception surfaced";
    } catch (const std::runtime_error& e) {
      // Epochs 2, 5 (and 8, out of range) throw; the serial loop hits 2
      // first, so the pool must rethrow 2 regardless of worker count.
      EXPECT_STREQ(e.what(), "epoch 2");
    }
  }
}

TEST(EpochPool, WorkerCountCapsAtEpochCount) {
  epoch::Options opt;
  opt.threads = 16;
  EXPECT_EQ(epoch::EpochPool::workers_for(3, opt), 3u);
  EXPECT_EQ(epoch::EpochPool::workers_for(0, opt), 0u);
  opt.threads = 1;
  EXPECT_EQ(epoch::EpochPool::workers_for(8, opt), 1u);
}

/// Advance a bed by one epoch of tracked work and leave it quiescent.
void epoch_body(TestBed& bed, std::size_t e) {
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 40;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(e % 2 == 0 ? Technique::kSpml : Technique::kProc,
                              k, proc);
  const RunResult r = run_tracked(
      k, proc,
      [=](guest::Process& p) {
        Rng rng(77 + e);
        for (u64 n = 0; n < pages * 2; ++n) {
          p.touch_write(base + rng.below(pages) * kPageSize);
        }
      },
      tracker.get());
  tracker->shutdown();
  // Epoch boundaries require full quiescence: the resident OoH module (left
  // loaded by design after shutdown) must be unloaded before save().
  k.unload_ooh_module();
  ASSERT_GT(r.truth_pages, 0u);
}

TEST(EpochRun, ReplayedEpochsReproduceRecordedSeamsAcrossThreadCounts) {
  constexpr std::size_t kEpochs = 4;
  TestBed recorder(small_bed());
  const EpochChain chain = record_epochs(recorder, kEpochs, epoch_body);
  ASSERT_EQ(chain.epochs(), kEpochs);
  ASSERT_EQ(chain.boundaries.size(), kEpochs + 1);
  // The recording's final state is the bed's current state.
  EXPECT_TRUE(chain.boundaries.back().bytes == recorder.state_bytes());

  const auto make_bed = [] { return std::make_unique<TestBed>(small_bed()); };
  for (const unsigned threads : {1u, 2u, 4u}) {
    ReplayOptions opt;
    opt.threads = threads;
    opt.stagger_seed = threads;  // shuffle completion order too
    // verify_seams (on by default) byte-compares every replayed epoch's
    // exit against the recorded chain and throws on any divergence.
    const auto exits = replay_epochs(make_bed, chain, epoch_body, opt);
    ASSERT_EQ(exits.size(), kEpochs);
    for (std::size_t e = 0; e < kEpochs; ++e) {
      EXPECT_TRUE(exits[e] == chain.boundaries[e + 1].bytes);
    }
  }
}

TEST(EpochRun, MergedCountersEqualSerialTotals) {
  EventCounters a;
  a.add(Event::kPageFaultSoftDirty, 3);
  a.add(Event::kHypercall, 1);
  EventCounters b;
  b.add(Event::kPageFaultSoftDirty, 4);
  b.add(Event::kPmlLogGpa, 9);
  const EventCounters merged = merge_counters({a, b});
  EXPECT_EQ(merged.get(Event::kPageFaultSoftDirty), 7u);
  EXPECT_EQ(merged.get(Event::kHypercall), 1u);
  EXPECT_EQ(merged.get(Event::kPmlLogGpa), 9u);
}

TEST(EpochRun, EnvThreadKnobParses) {
  // Not set in the test environment: auto-size sentinel.
  EXPECT_EQ(epoch_threads_from_env(), 0u);
}

}  // namespace
}  // namespace ooh::lib
