// Property tests of the unified DirtyTracker API, parameterized over
// (technique x write pattern): completeness (collected superset of truth),
// exactness (no pages reported that were never written, modulo VMA scope),
// interval semantics, and the paper's cost ordering.
#include <gtest/gtest.h>

#include <unordered_set>

#include "base/rng.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "guest/ooh_module.hpp"
#include "ooh/trackers.hpp"

namespace ooh::lib {
namespace {

constexpr Technique kAll[] = {Technique::kProc, Technique::kUfd, Technique::kSpml,
                              Technique::kEpml, Technique::kWp, Technique::kOracle};

std::string tech_label(Technique t) {
  switch (t) {
    case Technique::kProc: return "proc";
    case Technique::kUfd: return "ufd";
    case Technique::kSpml: return "spml";
    case Technique::kEpml: return "epml";
    case Technique::kWp: return "wp";
    case Technique::kOracle: return "oracle";
  }
  return "?";
}

enum class Pattern { kSequential, kRandom, kHotCold, kSparse, kRewrites };

std::string pattern_label(Pattern p) {
  switch (p) {
    case Pattern::kSequential: return "sequential";
    case Pattern::kRandom: return "random";
    case Pattern::kHotCold: return "hotcold";
    case Pattern::kSparse: return "sparse";
    case Pattern::kRewrites: return "rewrites";
  }
  return "?";
}

WorkloadFn make_pattern(Pattern p, Gva base, u64 pages) {
  switch (p) {
    case Pattern::kSequential:
      return [=](guest::Process& proc) {
        for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
      };
    case Pattern::kRandom:
      return [=](guest::Process& proc) {
        Rng rng(1234);
        for (u64 i = 0; i < pages * 2; ++i) {
          proc.touch_write(base + rng.below(pages) * kPageSize);
        }
      };
    case Pattern::kHotCold:
      return [=](guest::Process& proc) {
        for (int rep = 0; rep < 50; ++rep) {
          proc.touch_write(base);  // hot page
          proc.touch_write(base + (rep % pages) * kPageSize);
        }
      };
    case Pattern::kSparse:
      return [=](guest::Process& proc) {
        for (u64 i = 0; i < pages; i += 7) proc.touch_write(base + i * kPageSize);
      };
    case Pattern::kRewrites:
      return [=](guest::Process& proc) {
        for (int rep = 0; rep < 3; ++rep) {
          for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
        }
      };
  }
  return {};
}

class TrackerProperty
    : public ::testing::TestWithParam<std::tuple<Technique, Pattern>> {};

TEST_P(TrackerProperty, CompleteAndExact) {
  const auto [tech, pattern] = GetParam();
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 300;
  const Gva base = proc.mmap(pages * kPageSize);

  auto tracker = make_tracker(tech, k, proc);
  RunOptions opts;
  opts.collect_period = msecs(0.1);  // several intervals
  const RunResult r =
      run_tracked(k, proc, make_pattern(pattern, base, pages), tracker.get(), opts);

  // Completeness: every truly dirtied page was reported.
  EXPECT_EQ(r.captured_truth, r.truth_pages)
      << tech_label(tech) << " missed " << (r.truth_pages - r.captured_truth)
      << " of " << r.truth_pages << " dirty pages";
  EXPECT_EQ(r.dropped, 0u);
  // Exactness: nothing reported that was not actually written.
  EXPECT_EQ(r.unique_pages, r.truth_pages)
      << tech_label(tech) << " over-reported pages it should not have";
  tracker->shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniquesAllPatterns, TrackerProperty,
    ::testing::Combine(::testing::ValuesIn(kAll),
                       ::testing::Values(Pattern::kSequential, Pattern::kRandom,
                                         Pattern::kHotCold, Pattern::kSparse,
                                         Pattern::kRewrites)),
    [](const auto& pinfo) {
      return tech_label(std::get<0>(pinfo.param)) + std::string("_") +
             pattern_label(std::get<1>(pinfo.param));
    });

// The segment backend trades precision for range metadata (one shared Pte
// per run): it must never miss a dirty page, but it reports supersets, so
// it runs the same pattern sweep with the exactness check relaxed to the
// superset direction instead of joining kAll.
class SegTrackerProperty : public ::testing::TestWithParam<Pattern> {};

TEST_P(SegTrackerProperty, CompleteWithSupersetReports) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 300;
  const Gva base = proc.mmap(pages * kPageSize);

  auto tracker = make_tracker(Technique::kSeg, k, proc);
  RunOptions opts;
  opts.collect_period = msecs(0.1);
  const RunResult r =
      run_tracked(k, proc, make_pattern(GetParam(), base, pages), tracker.get(), opts);

  EXPECT_EQ(r.captured_truth, r.truth_pages)
      << "seg missed " << (r.truth_pages - r.captured_truth) << " of "
      << r.truth_pages << " dirty pages";
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GE(r.unique_pages, r.truth_pages);
  tracker->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, SegTrackerProperty,
                         ::testing::Values(Pattern::kSequential, Pattern::kRandom,
                                           Pattern::kHotCold, Pattern::kSparse,
                                           Pattern::kRewrites),
                         [](const auto& pinfo) { return pattern_label(pinfo.param); });

class TrackerIntervalTest : public ::testing::TestWithParam<Technique> {};

TEST_P(TrackerIntervalTest, IntervalsAreDisjointWindows) {
  // Pages dirtied in interval 1 but untouched in interval 2 must not appear
  // in interval 2's collection; pages re-dirtied must reappear.
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(16 * kPageSize);
  for (int i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);  // warm

  auto tracker = make_tracker(GetParam(), k, proc);
  tracker->init();
  tracker->begin_interval();
  guest::Scheduler& sched = k.scheduler();

  sched.enter_process(proc.pid());
  for (int i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
  sched.exit_process(proc.pid());
  std::vector<Gva> first = tracker->collect();
  tracker->begin_interval();
  EXPECT_EQ(first.size(), 16u);

  sched.enter_process(proc.pid());
  proc.touch_write(base + 3 * kPageSize);
  proc.touch_write(base + 9 * kPageSize);
  sched.exit_process(proc.pid());
  std::vector<Gva> second = tracker->collect();
  EXPECT_EQ(second, (std::vector<Gva>{base + 3 * kPageSize, base + 9 * kPageSize}));
  tracker->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, TrackerIntervalTest, ::testing::ValuesIn(kAll),
                         [](const auto& pinfo) { return tech_label(pinfo.param); });

TEST(TrackerPhases, SpmlCollectIsDominatedByReverseMapping) {
  // Fig. 3: reverse mapping is the bottleneck of SPML collection.
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 2560;  // 10 MiB
  const Gva base = proc.mmap(pages * kPageSize);
  auto spml = make_tracker(Technique::kSpml, k, proc);
  auto epml_bed = std::make_unique<TestBed>();

  const RunResult r = run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      spml.get());
  const double collect_us = r.phases.collect.count();
  const double rmap_us =
      bed.machine().cost.reverse_map_per_page_us(proc.mapped_bytes()) *
      static_cast<double>(r.events.get(Event::kReverseMapLookup));
  EXPECT_GT(rmap_us / collect_us, 0.5)
      << "reverse mapping should dominate SPML collection";
  spml->shutdown();
}

TEST(TrackerPhases, EpmlCollectFarCheaperThanSpmlAndProc) {
  const u64 pages = 2560;
  auto collect_time = [&](Technique t) {
    TestBed bed;
    guest::GuestKernel& k = bed.kernel();
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(pages * kPageSize);
    auto tracker = make_tracker(t, k, proc);
    const RunResult r = run_tracked(
        k, proc,
        [&](guest::Process& p) {
          for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
        },
        tracker.get());
    tracker->shutdown();
    return r.phases.collect.count();
  };
  const double epml = collect_time(Technique::kEpml);
  const double spml = collect_time(Technique::kSpml);
  const double proc = collect_time(Technique::kProc);
  EXPECT_LT(epml * 10, spml);
  EXPECT_LT(epml * 10, proc);
}

TEST(TrackerScope, SpmlAndEpmlRequireTheirModuleMode) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& p1 = k.create_process();
  (void)p1.mmap(kPageSize);
  auto spml = make_tracker(Technique::kSpml, k, p1);
  spml->init();
  EXPECT_EQ(k.ooh_module()->mode(), guest::OohMode::kSpml);
  spml->shutdown();
  // Switching technique reloads the module in the other mode.
  guest::Process& p2 = k.create_process();
  (void)p2.mmap(kPageSize);
  auto epml = make_tracker(Technique::kEpml, k, p2);
  epml->init();
  EXPECT_EQ(k.ooh_module()->mode(), guest::OohMode::kEpml);
  epml->shutdown();
}

TEST(TrackerNames, AreStable) {
  EXPECT_EQ(technique_name(Technique::kProc), "/proc");
  EXPECT_EQ(technique_name(Technique::kUfd), "ufd");
  EXPECT_EQ(technique_name(Technique::kSpml), "SPML");
  EXPECT_EQ(technique_name(Technique::kEpml), "EPML");
  EXPECT_EQ(technique_name(Technique::kOracle), "oracle");
}

}  // namespace
}  // namespace ooh::lib
