// Shared helpers for the bench harnesses.
//
// Every binary regenerates one of the paper's tables/figures. Default runs
// use scaled-down workloads so the whole suite finishes in minutes; pass
// --full for the paper-scale configurations (Table III sizes, 1MB..1GB
// sweeps).
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "base/vtime.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::bench {

struct Args {
  bool full = false;
  /// Workload scale divisor: 1 at --full, else a bench-chosen default.
  u64 scale = 32;
  /// Worker threads for multi-VM benches (0 = auto-size to the host).
  unsigned threads = 0;

  static Args parse(int argc, char** argv, u64 default_scale = 32) {
    Args a;
    a.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
        a.scale = 1;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        a.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      }
    }
    return a;
  }
};

/// The memory sweep of Table I / Table V(b) / Figs. 3-4.
inline std::vector<u64> memory_sweep(bool full) {
  if (full) {
    return {1 * kMiB, 10 * kMiB, 50 * kMiB, 100 * kMiB, 250 * kMiB, 500 * kMiB, kGiB};
  }
  return {1 * kMiB, 10 * kMiB, 50 * kMiB, 100 * kMiB};
}

inline std::string mem_label(u64 bytes) {
  if (bytes >= kGiB) return std::to_string(bytes / kGiB) + "GB";
  return std::to_string(bytes / kMiB) + "MB";
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("(virtual-time simulation; see EXPERIMENTS.md for paper values)\n");
  std::printf("==============================================================\n");
}

/// One warm single-cycle microbench run (the paper's Table I / Fig. 4
/// methodology): returns {ideal_us, tracked_us, tracker_us}.
struct MicroRun {
  double ideal_us = 0.0;
  double tracked_us = 0.0;
  double tracker_us = 0.0;
  lib::RunResult result;
};

/// Pass count calibrated so the monitoring window gives each page ~0.8us of
/// Tracked work -- this puts the large-size overheads in the paper's range
/// (ufd ~15x, /proc ~4x, SPML ~66x at 1GB).
inline MicroRun run_micro(std::optional<lib::Technique> tech, u64 mem_bytes,
                          int passes = 8) {
  const u64 pages = pages_for_bytes(mem_bytes);
  const auto work = [pages](Gva base) {
    return [base, pages](guest::Process& p) {
      for (u64 i = 0; i < pages; ++i) p.write_u64(base + i * kPageSize, i);
    };
  };
  // Ideal first.
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = std::max<u64>(mem_bytes * 2, 64 * kMiB);
  opts.host_mem_bytes = opts.vm_mem_bytes + 2 * kGiB;

  MicroRun out;
  VirtDuration ideal{0};
  {
    lib::TestBed bed(opts);
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    const Gva base = proc.mmap(mem_bytes);
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
    lib::RunOptions ro;
    ro.collect_period = VirtDuration{0};
    auto body = work(base);
    int p = passes;
    const lib::RunResult r = lib::run_tracked(
        k, proc,
        [&](guest::Process& pr) {
          for (int i = 0; i < p; ++i) body(pr);
        },
        nullptr, ro);
    ideal = r.tracked_time;
    out.ideal_us = ideal.count();
  }
  if (!tech) {
    out.tracked_us = out.ideal_us;
    return out;
  }

  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(mem_bytes);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  auto tracker = lib::make_tracker(*tech, k, proc);
  lib::RunOptions ro;
  ro.collect_period = ideal * 0.75;
  ro.max_collections = 1;
  auto body = work(base);
  int p = passes;
  out.result = lib::run_tracked(
      k, proc,
      [&](guest::Process& pr) {
        for (int i = 0; i < p; ++i) body(pr);
      },
      tracker.get(), ro);
  tracker->shutdown();
  out.tracked_us = out.result.tracked_time.count();
  out.tracker_us = out.result.tracker_time().count() - out.result.phases.init.count();
  return out;
}

}  // namespace ooh::bench
