#include "sim/phys_mem.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

#include "base/sync.hpp"

namespace ooh::sim {

PhysicalMemory::PhysicalMemory(u64 bytes) : total_frames_(pages_for_bytes(bytes)) {
  // Frame 0 is reserved (HPA 0 doubles as "not configured" in VMCS fields,
  // as firmware does on real machines).
  // relaxed-ok: construction precedes any concurrent use.
  next_frame_.store(1, std::memory_order_relaxed);
}

Hpa PhysicalMemory::alloc_frame() {
  // Recycled frames first. The starting shard rotates so concurrent
  // allocators do not all contend on shard 0; which shard a frame comes
  // from only changes HPA values, never any virtual-time result. The rotor
  // is per-machine (and snapshotted) so a restored machine replays the same
  // HPA sequence as the recorded one — epoch seam verification byte-
  // compares serialized EPTs, which contain HPAs.
  // relaxed-ok: the rotor only spreads contention; any stale value is a
  // valid starting shard and the shard mutex orders the actual state.
  const std::size_t home = alloc_rotor_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[(home + i) % kShards];
    sync::SpinGuard lock(s.mu);
    if (!s.free_list.empty()) {
      const u64 fn = s.free_list.back();
      s.free_list.pop_back();
      // relaxed-ok: statistics counter; the shard mutex already ordered the
      // free-list hand-off.
      used_frames_.fetch_add(1, std::memory_order_relaxed);
      return fn << kPageShift;
    }
  }
  // Fresh frame from the bump pointer.
  // relaxed-ok: the CAS loop below tolerates any stale starting value.
  u64 fn = next_frame_.load(std::memory_order_relaxed);
  while (fn < total_frames_ &&
         // relaxed-ok: the bump pointer is the only state the CAS transfers;
         // no other memory is published through it (frame contents are
         // materialised under the shard mutex).
         !next_frame_.compare_exchange_weak(fn, fn + 1, std::memory_order_relaxed)) {
  }
  if (fn >= total_frames_) throw std::bad_alloc{};
  // relaxed-ok: statistics counter, see above.
  used_frames_.fetch_add(1, std::memory_order_relaxed);
  return fn << kPageShift;
}

Hpa PhysicalMemory::alloc_frames_contiguous(u64 count) {
  assert(count > 0);
  // relaxed-ok: CAS loop tolerates a stale start, as in alloc_frame.
  u64 fn = next_frame_.load(std::memory_order_relaxed);
  while (fn + count <= total_frames_ &&
         !next_frame_.compare_exchange_weak(
             fn, fn + count,
             // relaxed-ok: bump pointer only, see alloc_frame.
             std::memory_order_relaxed)) {
  }
  if (fn + count > total_frames_) throw std::bad_alloc{};
  // relaxed-ok: statistics counter, see above.
  used_frames_.fetch_add(count, std::memory_order_relaxed);
  return fn << kPageShift;
}

void PhysicalMemory::free_frame(Hpa frame) {
  assert(is_page_aligned(frame));
  const u64 fn = page_index(frame);
  // relaxed-ok: debug sanity bound; exactness is not required.
  assert(fn < next_frame_.load(std::memory_order_relaxed));
  Shard& s = shard_of(fn);
  {
    sync::SpinGuard lock(s.mu);
    s.data.erase(fn);
    s.free_list.push_back(fn);
  }
  // relaxed-ok: debug sanity bound on a statistics counter.
  assert(used_frames_.load(std::memory_order_relaxed) > 0);
  // relaxed-ok: statistics counter; the shard mutex ordered the hand-off.
  used_frames_.fetch_sub(1, std::memory_order_relaxed);
}

u64 PhysicalMemory::backed_frames() const {
  u64 total = 0;
  for (const Shard& s : shards_) {
    sync::SpinGuard lock(s.mu);
    total += s.data.size();
  }
  return total;
}

u8* PhysicalMemory::frame_data(Hpa frame) {
  const u64 fn = page_index(frame);
  Shard& s = shard_of(fn);
  sync::SpinGuard lock(s.mu);
  auto& slot = s.data[fn];
  if (!slot) {
    slot = std::make_shared<Frame>();
    slot->fill(0);
  } else if (slot.use_count() > 1) {
    // Copy-on-write break: a snapshot still references these contents, and
    // the caller is about to mutate them. Clone so the captured image stays
    // frozen; the snapshot's reference keeps the original alive.
    slot = std::make_shared<Frame>(*slot);
  }
  return slot->data();
}

std::vector<PhysicalMemory::FrameImage> PhysicalMemory::capture_frames() const {
  std::vector<FrameImage> out;
  out.reserve(backed_frames());
  for (const Shard& s : shards_) {
    sync::SpinGuard lock(s.mu);
    for (const auto& [fn, frame] : s.data) out.emplace_back(fn, frame);
  }
  // Frame numbers are unique across shards; sorting makes the capture order
  // (and everything serialized from it) deterministic.
  std::sort(out.begin(), out.end(),
            [](const FrameImage& a, const FrameImage& b) { return a.first < b.first; });
  return out;
}

bool PhysicalMemory::frame_shared(Hpa frame) const {
  const u64 fn = page_index(frame);
  const Shard& s = shard_of(fn);
  sync::SpinGuard lock(s.mu);
  const auto it = s.data.find(fn);
  return it != s.data.end() && it->second.use_count() > 1;
}

u64 PhysicalMemory::shared_frames() const {
  u64 total = 0;
  for (const Shard& s : shards_) {
    sync::SpinGuard lock(s.mu);
    for (const auto& [fn, frame] : s.data) {
      if (frame.use_count() > 1) ++total;
    }
  }
  return total;
}

std::vector<std::pair<u64, bool>> PhysicalMemory::backed_frame_table() const {
  std::vector<std::pair<u64, bool>> out;
  for (const Shard& s : shards_) {
    sync::SpinGuard lock(s.mu);
    for (const auto& [fn, frame] : s.data) {
      out.emplace_back(fn, frame.use_count() > 1);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const u8* PhysicalMemory::frame_data_if_present(Hpa frame) const {
  const u64 fn = page_index(frame);
  const Shard& s = shard_of(fn);
  sync::SpinGuard lock(s.mu);
  const auto it = s.data.find(fn);
  return it == s.data.end() ? nullptr : it->second->data();
}

u64 PhysicalMemory::read_u64(Hpa addr) const {
  assert(page_offset(addr) + 8 <= kPageSize);
  const u8* p = frame_data_if_present(page_floor(addr));
  if (p == nullptr) return 0;
  u64 v;
  std::memcpy(&v, p + page_offset(addr), sizeof v);
  return v;
}

void PhysicalMemory::write_u64(Hpa addr, u64 value) {
  assert(page_offset(addr) + 8 <= kPageSize);
  u8* p = frame_data(page_floor(addr));
  std::memcpy(p + page_offset(addr), &value, sizeof value);
}

}  // namespace ooh::sim
