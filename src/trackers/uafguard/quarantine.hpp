// Use-after-free mitigation through pointer-quarantine (the third userspace
// dirty-tracking consumer the paper's introduction names, in the style of
// MarkUs): free() does not reuse memory immediately -- blocks sit in
// quarantine until a conservative scan proves no pointer to them remains.
//
// The scan is where dirty tracking pays: the first sweep reads every arena
// page, but a page that has not been written since can't have *changed* its
// pointers, so later sweeps re-scan only the pages the DirtyTracker reports
// dirty. Soundness therefore depends on tracker completeness, which the
// test suite exercises per technique.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "ooh/tracker.hpp"

namespace ooh::uaf {

class QuarantineAllocator {
 public:
  /// The arena is data-backed: sweeps read real bytes, so any u64 the
  /// application stores is visible to the conservative scan.
  QuarantineAllocator(guest::GuestKernel& kernel, guest::Process& proc,
                      u64 arena_bytes, lib::Technique technique);
  ~QuarantineAllocator();

  QuarantineAllocator(const QuarantineAllocator&) = delete;
  QuarantineAllocator& operator=(const QuarantineAllocator&) = delete;

  [[nodiscard]] Gva alloc(u64 bytes);
  /// Quarantine the block; it becomes reusable only after a sweep finds no
  /// remaining pointer into it.
  void free(Gva block);

  struct SweepStats {
    bool full = false;
    u64 pages_scanned = 0;
    u64 blocks_released = 0;   ///< left quarantine, back on the free list.
    u64 blocks_held = 0;       ///< still referenced somewhere (potential UAF).
    VirtDuration time{0};
    VirtDuration dirty_query{0};
  };
  SweepStats sweep();

  [[nodiscard]] u64 quarantined_blocks() const noexcept { return quarantined_; }
  [[nodiscard]] u64 live_blocks() const noexcept { return live_; }
  /// True while `block` is allocated or quarantined (its memory is pinned
  /// and cannot be handed out again).
  [[nodiscard]] bool block_pinned(Gva block) const;
  [[nodiscard]] Gva arena_base() const noexcept { return arena_; }

 private:
  enum class State { kLive, kQuarantined, kFree };
  struct Block {
    u64 size = 0;
    State state = State::kLive;
  };

  void scan_page(Gva page);
  void release_unreferenced();

  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  std::unique_ptr<lib::DirtyTracker> tracker_;

  Gva arena_ = 0;
  u64 arena_bytes_ = 0;
  u64 bump_ = 0;
  std::map<Gva, Block> blocks_;  ///< ordered, for containing-block lookup.
  std::unordered_map<u64, std::vector<Gva>> free_lists_;  ///< size -> blocks.
  /// page -> blocks referenced from that page, per its most recent scan.
  std::unordered_map<Gva, std::unordered_set<Gva>> page_refs_;
  /// block -> pages currently referencing it.
  std::unordered_map<Gva, std::unordered_set<Gva>> ref_pages_;
  u64 quarantined_ = 0;
  u64 live_ = 0;
  bool first_sweep_done_ = false;
};

}  // namespace ooh::uaf
