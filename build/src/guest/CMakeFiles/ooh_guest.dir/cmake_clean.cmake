file(REMOVE_RECURSE
  "CMakeFiles/ooh_guest.dir/kernel.cpp.o"
  "CMakeFiles/ooh_guest.dir/kernel.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/ooh_module.cpp.o"
  "CMakeFiles/ooh_guest.dir/ooh_module.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/process.cpp.o"
  "CMakeFiles/ooh_guest.dir/process.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/procfs.cpp.o"
  "CMakeFiles/ooh_guest.dir/procfs.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/scheduler.cpp.o"
  "CMakeFiles/ooh_guest.dir/scheduler.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/swap.cpp.o"
  "CMakeFiles/ooh_guest.dir/swap.cpp.o.d"
  "CMakeFiles/ooh_guest.dir/uffd.cpp.o"
  "CMakeFiles/ooh_guest.dir/uffd.cpp.o.d"
  "libooh_guest.a"
  "libooh_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
