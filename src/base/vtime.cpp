#include "base/vtime.hpp"

#include <cmath>
#include <cstdio>

namespace ooh {

std::string format_duration(VirtDuration d) {
  const double us = d.count();
  char buf[64];
  const double a = std::fabs(us);
  if (a < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f ns", us * 1e3);
  } else if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f us", us);
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", us / 1e6);
  }
  return buf;
}

}  // namespace ooh
