// Boehm-style mark-sweep garbage collector over the simulated guest heap,
// with dirty-page-driven incremental marking (paper §IV-E, §VI-E).
//
// Liveness is computed exactly (the collector never frees a reachable
// object). What the dirty-page technique changes -- exactly as in Boehm --
// is the *mark phase cost*: the first cycle scans the whole live heap; later
// cycles re-scan only roots and the objects on pages dirtied since the
// previous cycle, plus whatever the technique charges to find those pages
// (clear_refs + pagemap for /proc, ring reads for EPML, ring + reverse
// mapping for SPML).
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/flat_gva_set.hpp"
#include "base/types.hpp"
#include "base/vtime.hpp"
#include "ooh/tracker.hpp"

namespace ooh::gc {

struct GcCycleStats {
  unsigned cycle = 0;
  VirtDuration duration{0};     ///< total pause contributed by this cycle.
  VirtDuration dirty_query{0};  ///< time acquiring dirty pages (the technique).
  u64 pages_rescanned = 0;
  u64 objects_marked = 0;
  u64 objects_freed = 0;
  u64 bytes_freed = 0;
  bool full = false;  ///< first (or forced-full) cycle.
};

struct GcStats {
  std::vector<GcCycleStats> cycles;
  VirtDuration total_gc_time{0};
  u64 total_allocated_bytes = 0;

  [[nodiscard]] unsigned cycle_count() const noexcept {
    return static_cast<unsigned>(cycles.size());
  }
};

class GcHeap {
 public:
  /// Collection triggers when this many bytes have been allocated since the
  /// last cycle (Boehm's heap-growth heuristic, simplified).
  GcHeap(guest::GuestKernel& kernel, guest::Process& proc, u64 heap_bytes,
         u64 gc_threshold_bytes = 4 * kMiB);
  ~GcHeap();

  GcHeap(const GcHeap&) = delete;
  GcHeap& operator=(const GcHeap&) = delete;

  /// Use `technique` for incremental marking; kOracle by default. The
  /// tracker is created lazily on the first collection.
  void set_technique(lib::Technique technique) { technique_ = technique; }

  /// Create and initialise the tracker now (Boehm does this at startup);
  /// otherwise the one-time init cost lands inside the first cycle's pause.
  void prepare_tracker();

  // ---- mutator interface -----------------------------------------------------
  /// Allocate an object with `ref_slots` pointer fields and `data_bytes` of
  /// payload; returns its address. May trigger a collection first.
  [[nodiscard]] Gva alloc(unsigned ref_slots, u64 data_bytes);
  void add_root(Gva obj);
  void remove_root(Gva obj);

  /// RAII local root: keeps an under-construction object alive across
  /// allocations that may trigger a collection -- standing in for Boehm's
  /// conservative stack scan.
  class Local {
   public:
    Local(GcHeap& heap, Gva obj) : heap_(heap) { heap_.locals_.push_back(obj); }
    ~Local() { heap_.locals_.pop_back(); }
    Local(const Local&) = delete;
    Local& operator=(const Local&) = delete;

   private:
    GcHeap& heap_;
  };
  /// Store `target` (0 = null) into pointer field `slot` of `obj`.
  void write_ref(Gva obj, unsigned slot, Gva target);
  [[nodiscard]] Gva read_ref(Gva obj, unsigned slot);
  /// Write into the object's data payload at byte offset.
  void write_data(Gva obj, u64 offset, u64 value);

  // ---- collector ---------------------------------------------------------------
  GcCycleStats collect();

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] u64 live_objects() const noexcept { return objects_.size(); }
  [[nodiscard]] u64 live_bytes() const noexcept { return live_bytes_; }
  [[nodiscard]] u64 heap_used_bytes() const noexcept { return bump_ - heap_base_; }
  [[nodiscard]] bool is_object(Gva obj) const { return objects_.contains(obj); }
  [[nodiscard]] guest::Process& process() noexcept { return proc_; }

 private:
  struct Object {
    u64 size = 0;  ///< header + slots + payload, in bytes.
    std::vector<Gva> refs;
  };

  [[nodiscard]] Object& obj(Gva addr);
  void maybe_collect();
  [[nodiscard]] std::vector<Gva> acquire_dirty_pages(GcCycleStats& st);

  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  lib::Technique technique_ = lib::Technique::kOracle;
  std::unique_ptr<lib::DirtyTracker> tracker_;

  Gva heap_base_ = 0;
  Gva heap_end_ = 0;
  Gva bump_ = 0;
  u64 gc_threshold_;
  u64 allocated_since_gc_ = 0;
  u64 live_bytes_ = 0;

  // objects_ iteration order is load-bearing: the sweep walks it to build
  // the free list, so it feeds future allocation addresses (and through them
  // the guest access stream). Do not swap the container or pre-reserve it —
  // either changes iteration order and breaks bit-identical virtual time.
  std::unordered_map<Gva, Object> objects_;
  std::unordered_set<Gva> roots_;
  std::vector<Gva> locals_;  ///< stack-scan stand-in (see Local).
  std::unordered_map<u64, std::vector<Gva>> free_lists_;  ///< size -> free blocks.
  std::unordered_map<u64, std::unordered_set<Gva>> page_objects_;  ///< page -> objects.

  // Per-cycle mark/sweep scratch, reused so steady-state cycles allocate
  // nothing. Only membership and counts are read from these — never
  // iteration order — so they are free to use any layout.
  FlatGvaSet reachable_;
  std::vector<Gva> frontier_;  ///< FIFO: drained via a head cursor.
  std::vector<Gva> to_free_;

  GcStats stats_;
  bool first_cycle_done_ = false;
  double scan_ns_per_object_ = 40.0;  ///< mark-phase scan cost per object.
};

}  // namespace ooh::gc
