// Versioned byte-stream serializer for machine snapshots.
//
// The format is deliberately dumb: a magic + version header, then tagged
// sections, then fixed-width little-endian scalars in a fixed order per
// subsystem (see machine_image.cpp for the walk order). Two properties are
// load-bearing:
//
//   * Determinism. The same machine state always serializes to the same
//     bytes — unordered containers are emitted in sorted key order,
//     insertion-ordered containers in insertion order, and bitfield structs
//     through explicit pack/unpack helpers (never memcpy of padding). The
//     snapshot round-trip tests byte-compare serialize(original) against
//     serialize(restore(save(original))), so any nondeterminism here is a
//     test failure, not a latent surprise.
//
//   * Versioning. The header pins kSnapshotVersion; Reader refuses a
//     mismatched version outright. Sections let a reader diagnose *where* a
//     stream diverges (a truncated EPT section reads as "EPT section: bad
//     tag", not an opaque garbage cascade three subsystems later).
//
// Frame *contents* deliberately do not travel through this stream: they are
// shared copy-on-write with the live machine (sim/phys_mem.hpp FrameStore),
// which is what makes a 1 GiB-footprint snapshot a millisecond operation.
// The stream carries a per-frame FNV-1a digest instead so the byte-compare
// tests still cover content equality.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace ooh::snapshot {

inline constexpr u32 kSnapshotMagic = 0x4F4F4853;  // "OOHS"
inline constexpr u32 kSnapshotVersion = 1;

class Writer {
 public:
  Writer() {
    u32_(kSnapshotMagic);
    u32_(kSnapshotVersion);
  }

  void u8(ooh::u8 v) { bytes_.push_back(v); }
  void u32(ooh::u32 v) { u32_(v); }
  void u64(ooh::u64 v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<ooh::u8>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Doubles travel as their IEEE-754 bit pattern: bit-identity is the
  /// contract (virtual time is a double), not approximate equality.
  void f64(double v) {
    ooh::u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Open a tagged section; returns a token for end_section. Sections may
  /// not nest (the machine image is a flat sequence of subsystems).
  [[nodiscard]] std::size_t begin_section(ooh::u32 tag) {
    u32_(tag);
    const std::size_t patch = bytes_.size();
    u64(0);  // length placeholder, patched by end_section
    return patch;
  }
  void end_section(std::size_t patch) {
    const ooh::u64 len = bytes_.size() - (patch + 8);
    for (int i = 0; i < 8; ++i) bytes_[patch + i] = static_cast<ooh::u8>(len >> (8 * i));
  }

  [[nodiscard]] const std::vector<ooh::u8>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<ooh::u8> take() && noexcept { return std::move(bytes_); }

 private:
  void u32_(ooh::u32 v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<ooh::u8>(v >> (8 * i)));
  }
  std::vector<ooh::u8> bytes_;
};

/// Sequential reader over a Writer-produced stream. Every read is
/// bounds-checked; a truncated or corrupted stream throws
/// std::runtime_error rather than reading garbage into machine state.
class Reader {
 public:
  explicit Reader(const std::vector<ooh::u8>& bytes) : bytes_(bytes) {
    if (u32() != kSnapshotMagic) throw std::runtime_error("snapshot: bad magic");
    if (const ooh::u32 v = u32(); v != kSnapshotVersion) {
      throw std::runtime_error("snapshot: version " + std::to_string(v) +
                               " (expected " + std::to_string(kSnapshotVersion) + ")");
    }
  }

  ooh::u8 u8() {
    need(1);
    return bytes_[pos_++];
  }
  ooh::u32 u32() {
    need(4);
    ooh::u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<ooh::u32>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  ooh::u64 u64() {
    need(8);
    ooh::u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<ooh::u64>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  bool boolean() { return u8() != 0; }
  double f64() {
    const ooh::u64 bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Consume a section header, checking the tag and that the declared
  /// length fits in the remaining stream.
  void expect_section(ooh::u32 tag) {
    const ooh::u32 got = u32();
    if (got != tag) {
      throw std::runtime_error("snapshot: section tag mismatch (got " +
                               std::to_string(got) + ", want " + std::to_string(tag) + ")");
    }
    const ooh::u64 len = u64();
    if (len > bytes_.size() - pos_) throw std::runtime_error("snapshot: section overruns stream");
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw std::runtime_error("snapshot: truncated stream");
  }
  const std::vector<ooh::u8>& bytes_;
  std::size_t pos_ = 0;
};

/// FNV-1a over a frame's bytes — the content witness carried in the stream
/// in place of the CoW-shared contents themselves.
[[nodiscard]] inline u64 fnv1a(const ooh::u8* data, std::size_t n) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ooh::snapshot
