#include "ooh/tracker.hpp"

#include <algorithm>
#include <new>

#include "base/clock.hpp"

namespace ooh::lib {

std::string_view technique_name(Technique t) noexcept {
  switch (t) {
    case Technique::kProc: return "/proc";
    case Technique::kUfd: return "ufd";
    case Technique::kSpml: return "SPML";
    case Technique::kEpml: return "EPML";
    case Technique::kWp: return "wp";
    case Technique::kSeg: return "seg";
    case Technique::kOracle: return "oracle";
    case Technique::kAdaptive: return "adaptive";
  }
  return "?";
}

void DirtyTracker::init() {
  {
    VirtualClock::Scope s(kernel_.ctx().clock, phases_.init);
    try {
      do_init();
      return;
    } catch (const std::bad_alloc&) {
      const Technique fb = fallback_technique();
      if (fb == technique()) throw;  // nothing weaker to degrade to
      // Graceful degradation (visible, audited): the preferred backend's
      // resources could not be allocated, so the session continues on the
      // weaker sibling instead of dying — EPML falls back to SPML, wp to
      // /proc soft-dirty.
      sim::ExecContext& ctx = kernel_.ctx();
      ctx.count(Event::kTrackerDegraded);
      if (ctx.faults != nullptr) ctx.faults->note_degradation();
      ctx.fault_audit();
      fallback_ = make_tracker(fb, kernel_, proc_);
    }
  }
  fallback_->init();
}

void DirtyTracker::begin_interval() {
  if (fallback_) {
    fallback_->begin_interval();
    return;
  }
  VirtualClock::Scope s(kernel_.ctx().clock, phases_.arm);
  do_begin_interval();
}

std::vector<Gva> DirtyTracker::collect() {
  if (fallback_) return fallback_->collect();
  kernel_.ctx().count(Event::kTrackerCollect);
  VirtualClock::Scope s(kernel_.ctx().clock, phases_.collect);
  std::vector<Gva> pages = do_collect();
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  ++phases_.intervals;
  phases_.collected_pages += pages.size();
  return pages;
}

void DirtyTracker::shutdown() {
  if (fallback_) {
    fallback_->shutdown();
    return;
  }
  do_shutdown();
}

}  // namespace ooh::lib
