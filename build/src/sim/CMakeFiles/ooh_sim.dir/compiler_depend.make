# Empty compiler generated dependencies file for ooh_sim.
# This may be replaced when dependencies are built.
