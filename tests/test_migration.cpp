// Live-migration tests beyond the basic hypervisor suite: convergence
// behaviour, correctness of the transferred set, and coexistence with
// in-guest OoH sessions (the paper's motivating dual use of PML).
#include <gtest/gtest.h>

#include <unordered_set>

#include "hypervisor/migration.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::hv {
namespace {

TEST(Migration, TransfersEveryMappedPageAtLeastOnce) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 200;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  MigrationEngine engine(bed.hypervisor());
  const MigrationReport rep = engine.migrate(bed.vm(), [] {});
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.initial_pages, pages);
  EXPECT_GE(rep.pages_sent, rep.initial_pages);
  EXPECT_EQ(rep.stop_copy_pages, 0u) << "idle guest: nothing dirty at the end";
}

TEST(Migration, ResendsExactlyTheDirtiedPages) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 100;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  int round = 0;
  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.stop_copy_threshold_pages = 0;  // only a fully clean round converges
  const MigrationReport rep = engine.migrate(bed.vm(), [&] {
    if (round++ == 0) {
      for (int i = 0; i < 10; ++i) proc.touch_write(base + i * kPageSize);
    }
  });
  // initial copy + the 10 re-dirtied pages, nothing else.
  EXPECT_EQ(rep.pages_sent, rep.initial_pages + 10);
  EXPECT_TRUE(rep.converged);
}

TEST(Migration, DowntimeBoundedByThreshold) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 256;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.stop_copy_threshold_pages = 32;
  u64 hot = pages;
  const MigrationReport rep = engine.migrate(
      bed.vm(),
      [&] {  // exponentially cooling working set
        hot = std::max<u64>(hot / 4, 1);
        for (u64 i = 0; i < hot; ++i) proc.touch_write(base + i * kPageSize);
      },
      opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.stop_copy_pages, 32u);
  const double send_us = bed.machine().cost.migration_send_page_us;
  EXPECT_LE(rep.downtime.count(), 32 * send_us * 1.5);
}

TEST(Migration, CoexistsWithEpmlSession) {
  // EPML logs through guest PTE dirty flags and its own buffer; migration
  // uses EPT dirty flags and the hypervisor buffer. Both see their events.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();

  MigrationEngine engine(bed.hypervisor());
  int rounds = 0;
  const MigrationReport rep = engine.migrate(bed.vm(), [&] {
    if (rounds++ == 0) {
      k.scheduler().enter_process(proc.pid());
      for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
      k.scheduler().exit_process(proc.pid());
    }
  });
  EXPECT_TRUE(rep.converged);
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), 16u) << "the EPML session observed its writes untouched";
  tracker->shutdown();
}

TEST(Migration, CoexistsWithSpmlSessionBothComplete) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  tracker->init();
  tracker->begin_interval();

  MigrationEngine engine(bed.hypervisor());
  std::unordered_set<Gva> written;
  int rounds = 0;
  const MigrationReport rep = engine.migrate(bed.vm(), [&] {
    if (rounds++ < 2) {
      k.scheduler().enter_process(proc.pid());
      for (u64 i = 0; i < 8; ++i) {
        const Gva page = base + (i + rounds * 8) * kPageSize;
        proc.touch_write(page);
        written.insert(page);
      }
      k.scheduler().exit_process(proc.pid());
    }
  });
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.pages_sent, rep.initial_pages + written.size())
      << "migration saw the guest's writes";
  const std::vector<Gva> dirty = tracker->collect();
  for (const Gva page : written) {
    EXPECT_NE(std::find(dirty.begin(), dirty.end(), page), dirty.end())
        << "SPML session missed a page while migration shared the buffer";
  }
  tracker->shutdown();
}

TEST(Migration, DrainWindowWritesJoinTheStopAndCopySet) {
  // Final-round accounting regression: writes landing between the last
  // pre-copy harvest and the vCPU pause used to be dropped — they sat in the
  // PML buffer / dirty log but the engine paused and sent only the already
  // harvested set, silently corrupting the destination. They must join the
  // stop-and-copy set.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.drain_window_body = [&] {
    for (int i = 0; i < 7; ++i) proc.touch_write(base + i * kPageSize);
  };
  const MigrationReport rep = engine.migrate(bed.vm(), [] {}, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.stop_copy_pages, 7u)
      << "the drain-window writes must be re-sent while the VM is paused";
  EXPECT_EQ(rep.pages_sent, rep.initial_pages + 7);
}

TEST(Migration, NonConvergenceCutoffStillCapturesDrainWindowWrites) {
  // The forced stop-and-copy after max_rounds has the same drain window and
  // must apply the same accounting.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.max_rounds = 2;
  opts.stop_copy_threshold_pages = 0;
  opts.drain_window_body = [&] {
    for (u64 i = 32; i < 35; ++i) proc.touch_write(base + i * kPageSize);
  };
  const MigrationReport rep = engine.migrate(bed.vm(), [&] {
    // Hot set of 16 pages redirtied every quantum: never converges.
    for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
  });
  // Run again with the drain-window options (the lambda above used defaults).
  const MigrationReport rep2 = engine.migrate(
      bed.vm(),
      [&] {
        for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
      },
      opts);
  EXPECT_TRUE(rep.converged) << "sanity: default options converge";
  EXPECT_FALSE(rep2.converged);
  EXPECT_FALSE(rep2.aborted);
  EXPECT_EQ(rep2.stop_copy_pages, 16u + 3u)
      << "forced stop-and-copy = last hot set + drain-window writes";
}

TEST(Migration, ForcedCutoffCountsItsRoundInReportAndCounters) {
  // Accounting regression: the forced stop-and-copy after max_rounds runs a
  // full extra guest quantum + harvest of its own, but used to increment
  // neither rep.rounds nor Event::kMigrationRound — the report undercounted
  // how many quanta the guest ran during pre-copy.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.max_rounds = 2;
  opts.stop_copy_threshold_pages = 0;
  const u64 rounds_before = bed.ctx().counters.get(Event::kMigrationRound);
  const MigrationReport rep = engine.migrate(
      bed.vm(),
      [&] {  // 16-page hot set redirtied every quantum: never converges
        for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
      },
      opts);
  EXPECT_FALSE(rep.converged);
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.rounds, 3u) << "max_rounds pre-copy rounds + the cutoff round";
  EXPECT_EQ(bed.ctx().counters.get(Event::kMigrationRound) - rounds_before, 3u)
      << "the event stream must agree with the report";
  EXPECT_EQ(rep.stop_copy_pages, 16u);
}

TEST(Migration, ConvergencePredictorShortCircuitsHopelessPrecopy) {
  // A hot guest rewriting its working set faster than the transport can
  // send it will never converge; the predictor must detect that after its
  // warmup+patience budget and cut straight to stop-and-copy instead of
  // burning all 30 static rounds.
  const auto run = [](bool adaptive) {
    lib::TestBedOptions o;
    o.cost.migration_send_page_us = 200.0;  // 5 pages/ms transport
    lib::TestBed bed(o);
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    const u64 pages = 64;
    const Gva base = proc.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
    MigrationEngine engine(bed.hypervisor());
    MigrationOptions opts;
    opts.max_rounds = 30;
    opts.stop_copy_threshold_pages = 0;
    opts.adaptive_convergence = adaptive;
    return engine.migrate(
        bed.vm(),
        [&] {
          for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
        },
        opts);
  };
  const MigrationReport fixed = run(false);
  EXPECT_FALSE(fixed.converged);
  EXPECT_EQ(fixed.rounds, 31u) << "static budget: 30 rounds + forced cutoff";
  EXPECT_FALSE(fixed.predicted_nonconvergent);
  EXPECT_EQ(fixed.throttled_rounds, 0u);

  const MigrationReport adaptive = run(true);
  EXPECT_FALSE(adaptive.converged);
  EXPECT_TRUE(adaptive.predicted_nonconvergent);
  // Default predictor budget: 2 warmup rounds, then 2 sustained verdicts,
  // then the cutoff round — far short of the static 31.
  EXPECT_EQ(adaptive.rounds, 4u);
  EXPECT_LT(adaptive.rounds, fixed.rounds);
  EXPECT_GT(adaptive.predicted_dirty_rate, 5.0)
      << "the measured dirty rate exceeds the 5 pages/ms send rate";
  EXPECT_GE(adaptive.throttled_rounds, 1u) << "auto-converge throttled the guest";
  EXPECT_EQ(adaptive.stop_copy_pages, 64u)
      << "the predicted-hopeless hot set still arrives at stop-and-copy";
}

TEST(Migration, PredictorLeavesConvergingMigrationsAlone) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(100 * kPageSize);
  for (u64 i = 0; i < 100; ++i) proc.touch_write(base + i * kPageSize);
  MigrationEngine engine(bed.hypervisor());
  MigrationOptions opts;
  opts.adaptive_convergence = true;
  const MigrationReport rep = engine.migrate(bed.vm(), [] {}, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_FALSE(rep.predicted_nonconvergent);
  EXPECT_EQ(rep.throttled_rounds, 0u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kMigrationThrottle), 0u);
}

TEST(Migration, BackToBackMigrationsWork) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(32 * kPageSize);
  for (int i = 0; i < 32; ++i) proc.touch_write(base + i * kPageSize);
  MigrationEngine engine(bed.hypervisor());
  const MigrationReport r1 = engine.migrate(bed.vm(), [] {});
  const MigrationReport r2 = engine.migrate(bed.vm(), [] {});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r1.initial_pages, r2.initial_pages);
}

}  // namespace
}  // namespace ooh::hv
