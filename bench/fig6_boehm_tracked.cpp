// Figure 6: impact of Boehm GC on the Tracked application's execution time
// per technique. Baseline: the application with a zero-cost (oracle) dirty
// tracker -- the paper's "ideal execution time when not tracked".
//
// Paper's findings: /proc adds up to 232% (string-match); SPML up to 273%;
// EPML cuts the overhead to ~24% worst case, reducing it by ~62%.
#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/64);
  bench::print_header("Figure 6", "Boehm GC overhead (%) on Tracked per technique");

  struct App {
    std::string_view name;
    wl::ConfigSize size;
  };
  const std::vector<App> apps = {
      {"GCBench", wl::ConfigSize::kMedium},    {"histogram", wl::ConfigSize::kLarge},
      {"kmeans", wl::ConfigSize::kMedium},     {"matrix-multiply", wl::ConfigSize::kLarge},
      {"string-match", wl::ConfigSize::kLarge}, {"word-count", wl::ConfigSize::kMedium},
  };

  TextTable t({"application", "/proc (%)", "SPML (%)", "EPML (%)"});
  for (const App& app : apps) {
    const double ideal =
        bench::run_boehm(app.name, app.size, args.scale, lib::Technique::kOracle)
            .app_time_us;
    std::vector<double> row;
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      const bench::BoehmRun r = bench::run_boehm(app.name, app.size, args.scale, tech);
      row.push_back((r.app_time_us - ideal) / ideal * 100.0);
    }
    t.add_row(std::string(app.name) + " (" + std::string(wl::config_name(app.size)) + ")",
              row, 1);
  }
  t.print(std::cout);
  std::printf("\nShape check: EPML's overhead is far below /proc's and SPML's on\n"
              "every application.\n");
  return 0;
}
