#include "ooh/adaptive/wss_estimator.hpp"

#include <algorithm>

#include "sim/exec_context.hpp"
#include "sim/vcpu.hpp"

namespace ooh::lib {
namespace {

const WssSignal kEmptySignal{};

}  // namespace

bool WssEstimator::on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) {
  if (layer != sim::TrackLayer::kGuestPtDirty &&
      layer != sim::TrackLayer::kEptDirty) {
    return false;
  }
  if (!watched_.contains(ev.pid)) return false;
  ProcState& st = procs_[ev.pid];
  sim::ExecContext& ctx = ev.vcpu->ctx();
  if (!st.started) {
    st.started = true;
    st.window_start = ctx.clock.now();
  }
  // A huge-leaf transition covers gran_size bytes; record its base page
  // only — the authoritative interval ingest supplies page-precise sets,
  // and a per-leaf entry keeps the chain feed O(1) per event.
  st.window.insert(gran_floor(ev.gva_page, ev.gran));
  ctx.charge_ns(ctx.cost.wss_estimator_update_ns);
  return false;  // logging feed: never claims the event.
}

void WssEstimator::on_track_flush(u32 pid, Gva start, Gva end) {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) return;
  std::erase_if(it->second.window,
                [start, end](u64 page) { return page >= start && page < end; });
}

void WssEstimator::close_window(ProcState& st, VirtDuration now) {
  const double pages = static_cast<double>(st.window.size());
  // A zero-length window (back-to-back ingests) still closes, but its rate
  // is computed over a floor of 1ns so the EWMA never divides by zero.
  const double ms = std::max(to_ms(now - st.window_start), 1e-6);
  const double rate = pages / ms;
  if (st.sig.windows == 0) {
    st.sig.wss_pages = pages;
    st.sig.dirty_rate = rate;
  } else {
    st.sig.wss_pages = alpha_ * pages + (1.0 - alpha_) * st.sig.wss_pages;
    st.sig.dirty_rate = alpha_ * rate + (1.0 - alpha_) * st.sig.dirty_rate;
  }
  st.sig.last_window_pages = st.window.size();
  ++st.sig.windows;
  st.window.clear();
  st.window_start = now;
  st.started = true;
}

void WssEstimator::begin_window(u32 pid, VirtDuration now) {
  ProcState& st = procs_[pid];
  st.started = true;
  st.window_start = now;
}

void WssEstimator::note_interval(u32 pid, std::span<const Gva> pages,
                                 VirtDuration now, sim::ExecContext& ctx) {
  ProcState& st = procs_[pid];
  if (!st.started) {
    // First feed for this pid: the window opened when tracking started, but
    // the estimator only learns the clock here. Treat the first interval's
    // span as one window ending now.
    st.started = true;
    st.window_start = now - msecs(1);
  }
  for (const Gva page : pages) st.window.insert(page);
  ctx.charge_ns(ctx.cost.wss_estimator_update_ns *
                static_cast<double>(pages.size()));
  close_window(st, now);
}

void WssEstimator::ingest_sample(std::span<const Gpa> gpas, VirtDuration now,
                                 sim::ExecContext& ctx) {
  note_interval(0, gpas, now, ctx);
}

const WssSignal& WssEstimator::signal(u32 pid) const noexcept {
  const auto it = procs_.find(pid);
  return it == procs_.end() ? kEmptySignal : it->second.sig;
}

}  // namespace ooh::lib
